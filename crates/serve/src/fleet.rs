//! The model fleet: N independently hot-swappable [`ModelSlot`]s behind
//! one registry, each with its own micro-batcher, worker thread, queue
//! bound and deadline class, all compiling inference plans into one
//! shared, byte-bounded [`PlanCache`].
//!
//! Routing: requests name a slot via the `x-mfaplace-model` header or a
//! `/models/<name>/…` path; requests naming nothing go to the *default*
//! slot (the first one added), which is what keeps single-model
//! deployments wire-compatible. Admission control is per slot — one
//! tenant's full queue rejects only that tenant's requests, and reloading
//! or removing one slot never blocks another slot's worker (each slot has
//! its own state lock and thread).
//!
//! Plan/weight sharing: every slot loads through the fleet's [`PlanCache`]
//! keyed by checkpoint *content hash*, so two slots serving byte-identical
//! files share one compiled plan set instead of duplicating it.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use mfaplace_core::loader::LoadOptions;
use mfaplace_core::PlanCache;

use crate::batcher::{BatchConfig, Batcher, ModelSlot};
use crate::metrics::Metrics;

/// Per-tenant admission-control knobs for one slot.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlotLimits {
    /// Queue bound override; `None` uses the fleet's [`BatchConfig`].
    pub queue_bound: Option<usize>,
    /// Deadline class: default per-request deadline for requests to this
    /// slot that carry no `x-mfaplace-deadline-ms` header. `None` falls
    /// back to the server-wide default.
    pub default_deadline: Option<Duration>,
}

/// One registered slot: the model, its dedicated batcher and worker.
pub struct FleetSlot {
    slot: Arc<ModelSlot>,
    batcher: Arc<Batcher>,
    default_deadline: Option<Duration>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for FleetSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSlot")
            .field("name", &self.name())
            .field("default_deadline", &self.default_deadline)
            .finish_non_exhaustive()
    }
}

impl FleetSlot {
    /// The slot's routing name.
    pub fn name(&self) -> &str {
        self.slot.name()
    }

    /// The hot-swappable model.
    pub fn slot(&self) -> &Arc<ModelSlot> {
        &self.slot
    }

    /// The slot's request queue.
    pub fn batcher(&self) -> &Arc<Batcher> {
        &self.batcher
    }

    /// This slot's deadline class, if configured.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline
    }

    fn drain_and_join(&self) {
        self.batcher.shutdown();
        let handle = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

#[derive(Default)]
struct FleetInner {
    slots: BTreeMap<String, Arc<FleetSlot>>,
    default_name: Option<String>,
}

/// The registry mapping routing keys to live slots.
pub struct ModelFleet {
    inner: RwLock<FleetInner>,
    metrics: Arc<Metrics>,
    plan_cache: Arc<PlanCache>,
    batch_cfg: BatchConfig,
}

impl ModelFleet {
    /// Creates an empty fleet whose slots share one environment-sized plan
    /// cache and inherit `batch_cfg` (modulo per-slot queue overrides).
    pub fn new(metrics: Arc<Metrics>, batch_cfg: BatchConfig) -> Self {
        Self::with_plan_cache(metrics, batch_cfg, Arc::new(PlanCache::from_env()))
    }

    /// Like [`ModelFleet::new`] with an explicit shared plan cache.
    pub fn with_plan_cache(
        metrics: Arc<Metrics>,
        batch_cfg: BatchConfig,
        plan_cache: Arc<PlanCache>,
    ) -> Self {
        ModelFleet {
            inner: RwLock::new(FleetInner::default()),
            metrics,
            plan_cache,
            batch_cfg,
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The shared compiled-plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// The batching configuration new slots inherit.
    pub fn batch_config(&self) -> &BatchConfig {
        &self.batch_cfg
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, FleetInner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, FleetInner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Loads the checkpoint at `path` and registers it as slot `name`,
    /// spawning its worker thread. The first slot added becomes the
    /// default routing target.
    ///
    /// # Errors
    ///
    /// Rejects invalid or duplicate names and checkpoint load failures,
    /// leaving the fleet unchanged.
    pub fn add_slot(
        &self,
        name: &str,
        path: &str,
        opts: LoadOptions,
        limits: SlotLimits,
    ) -> Result<Arc<FleetSlot>, String> {
        validate_slot_name(name)?;
        if self.read().slots.contains_key(name) {
            return Err(format!("slot {name:?} already exists"));
        }
        // Load outside the registry lock: a slow checkpoint read must not
        // stall routing. The duplicate check re-runs at insert time.
        let slot = ModelSlot::load_named(
            name,
            path,
            opts,
            self.plan_cache.clone(),
            self.metrics.clone(),
        )?;
        self.install_slot(slot, limits)
    }

    /// Registers an already-built `slot` (tests, single-model back-compat
    /// path) under its own name and spawns its worker thread.
    ///
    /// # Errors
    ///
    /// Rejects invalid or duplicate names.
    pub fn install_slot(
        &self,
        slot: ModelSlot,
        limits: SlotLimits,
    ) -> Result<Arc<FleetSlot>, String> {
        let name = slot.name().to_owned();
        validate_slot_name(&name)?;
        let mut cfg = self.batch_cfg;
        if let Some(bound) = limits.queue_bound {
            cfg.queue_bound = bound.max(1);
        }
        let slot = Arc::new(slot);
        let batcher = Arc::new(Batcher::for_slot(cfg, self.metrics.slot(&name)));
        let worker = {
            let slot = slot.clone();
            let batcher = batcher.clone();
            std::thread::Builder::new()
                .name(format!("mfaplace-serve-{name}"))
                .spawn(move || batcher.run_worker(&slot))
                .map_err(|e| format!("spawn worker for slot {name:?}: {e}"))?
        };
        let fleet_slot = Arc::new(FleetSlot {
            slot,
            batcher,
            default_deadline: limits.default_deadline,
            worker: Mutex::new(Some(worker)),
        });
        let mut inner = self.write();
        if inner.slots.contains_key(&name) {
            // Lost a race with a concurrent add; tear our copy down.
            drop(inner);
            fleet_slot.drain_and_join();
            self.metrics.remove_slot(&name);
            return Err(format!("slot {name:?} already exists"));
        }
        inner.slots.insert(name.clone(), fleet_slot.clone());
        if inner.default_name.is_none() {
            inner.default_name = Some(name);
        }
        Ok(fleet_slot)
    }

    /// Resolves a routing key to a live slot; `None` means the default
    /// slot.
    ///
    /// # Errors
    ///
    /// Returns the distinct unknown-slot message (the server's 404 body)
    /// naming the requested key and the loaded slots.
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<FleetSlot>, String> {
        let inner = self.read();
        let key = match name {
            Some(n) => n,
            None => inner
                .default_name
                .as_deref()
                .ok_or_else(|| unknown_slot_message("<default>", &inner.slots))?,
        };
        inner
            .slots
            .get(key)
            .cloned()
            .ok_or_else(|| unknown_slot_message(key, &inner.slots))
    }

    /// The registered slot names, in routing order.
    pub fn names(&self) -> Vec<String> {
        self.read().slots.keys().cloned().collect()
    }

    /// The default routing target's name, if any slot is registered.
    pub fn default_name(&self) -> Option<String> {
        self.read().default_name.clone()
    }

    /// Deregisters slot `name`, drains its queue (already-accepted jobs
    /// are answered), joins its worker and drops its metric series. Other
    /// slots are untouched.
    ///
    /// # Errors
    ///
    /// Refuses to remove the default slot (it anchors unnamed-request
    /// routing) or a slot that does not exist.
    pub fn remove_slot(&self, name: &str) -> Result<(), String> {
        let removed = {
            let mut inner = self.write();
            if inner.default_name.as_deref() == Some(name) {
                return Err(format!(
                    "slot {name:?} is the default slot and cannot be removed"
                ));
            }
            match inner.slots.remove(name) {
                Some(s) => s,
                None => return Err(unknown_slot_message(name, &inner.slots)),
            }
        };
        // Drain outside the registry lock: routing stays live while the
        // removed slot answers its tail.
        removed.drain_and_join();
        self.metrics.remove_slot(name);
        Ok(())
    }

    /// Hot-swaps slot `name` to the checkpoint at `path`. Only that slot's
    /// state lock is taken; in-flight requests on other slots never wait.
    ///
    /// # Errors
    ///
    /// Unknown slot, unreadable checkpoint, or grid mismatch (the old
    /// model keeps serving in the latter two cases).
    pub fn reload_slot(
        &self,
        name: Option<&str>,
        path: &str,
        opts: LoadOptions,
    ) -> Result<(String, u64, mfaplace_models::ArchSpec), String> {
        let slot = self.resolve(name)?;
        let (version, spec) = slot.slot().reload(path, opts)?;
        Ok((slot.name().to_owned(), version, spec))
    }

    /// Publishes the shared plan cache's counters to the metrics registry
    /// (called on every `/metrics` scrape).
    pub fn publish_plan_cache_stats(&self) {
        self.metrics.set_plan_cache_stats(self.plan_cache.stats());
    }

    /// Drains every slot and joins every worker — the shutdown barrier.
    pub fn shutdown(&self) {
        let slots: Vec<Arc<FleetSlot>> = self.read().slots.values().cloned().collect();
        // Stop all queues first so slots drain concurrently, then join.
        for s in &slots {
            s.batcher().shutdown();
        }
        for s in &slots {
            s.drain_and_join();
        }
    }
}

fn unknown_slot_message(name: &str, slots: &BTreeMap<String, Arc<FleetSlot>>) -> String {
    let loaded: Vec<&str> = slots.keys().map(String::as_str).collect();
    if loaded.is_empty() {
        format!("no such model slot {name:?}; no slots are loaded")
    } else {
        format!(
            "no such model slot {name:?}; loaded slots: {}",
            loaded.join(", ")
        )
    }
}

/// Slot names travel in URLs, headers and metric labels, so restrict them
/// to a safe charset.
fn validate_slot_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("slot name must be 1..=64 characters".into());
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(format!(
            "slot name {name:?} may only contain ASCII letters, digits, '-', '_' and '.'"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_core::loader::init_checkpoint;
    use mfaplace_models::{Arch, ArchSpec};

    fn temp_ckpt(name: &str, seed: u64) -> String {
        let dir = std::env::temp_dir().join("mfaplace_fleet_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name).to_string_lossy().into_owned();
        let mut spec = ArchSpec::new(Arch::UNet, 16);
        spec.base_channels = 2;
        init_checkpoint(&spec, seed, &path).unwrap();
        path
    }

    #[test]
    fn add_resolve_remove_lifecycle() {
        let metrics = Arc::new(Metrics::new());
        let fleet = ModelFleet::new(metrics, BatchConfig::default());
        let a = temp_ckpt("fleet_a.mfaw", 1);
        let b = temp_ckpt("fleet_b.mfaw", 2);

        fleet
            .add_slot("alpha", &a, LoadOptions::default(), SlotLimits::default())
            .unwrap();
        fleet
            .add_slot("beta", &b, LoadOptions::default(), SlotLimits::default())
            .unwrap();
        assert_eq!(fleet.names(), vec!["alpha", "beta"]);
        assert_eq!(fleet.default_name().as_deref(), Some("alpha"));

        // Unnamed resolution goes to the default (first-added) slot.
        assert_eq!(fleet.resolve(None).unwrap().name(), "alpha");
        assert_eq!(fleet.resolve(Some("beta")).unwrap().name(), "beta");
        let err = fleet.resolve(Some("gamma")).unwrap_err();
        assert!(err.contains("no such model slot \"gamma\""), "{err}");
        assert!(err.contains("alpha, beta"), "{err}");

        // Duplicate and invalid names are rejected.
        let err = fleet
            .add_slot("beta", &b, LoadOptions::default(), SlotLimits::default())
            .unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        let err = fleet
            .add_slot(
                "bad name",
                &b,
                LoadOptions::default(),
                SlotLimits::default(),
            )
            .unwrap_err();
        assert!(err.contains("may only contain"), "{err}");

        // The default slot is protected; others remove cleanly.
        assert!(fleet.remove_slot("alpha").is_err());
        fleet.remove_slot("beta").unwrap();
        assert_eq!(fleet.names(), vec!["alpha"]);
        assert!(fleet.resolve(Some("beta")).is_err());

        fleet.shutdown();
    }

    #[test]
    fn slots_from_one_file_share_the_plan_cache() {
        let metrics = Arc::new(Metrics::new());
        let fleet = ModelFleet::new(metrics, BatchConfig::default());
        let a = temp_ckpt("fleet_shared.mfaw", 3);
        let one = fleet
            .add_slot("one", &a, LoadOptions::default(), SlotLimits::default())
            .unwrap();
        let two = fleet
            .add_slot("two", &a, LoadOptions::default(), SlotLimits::default())
            .unwrap();
        assert!(Arc::ptr_eq(
            one.slot().plan_cache(),
            two.slot().plan_cache()
        ));
        assert!(Arc::ptr_eq(one.slot().plan_cache(), fleet.plan_cache()));
        fleet.shutdown();
    }
}
