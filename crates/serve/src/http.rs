//! Minimal HTTP/1.1 request parsing and response writing on `std::io`.
//!
//! Supports exactly what the inference service needs: one request per
//! connection (`Connection: close` semantics), `Content-Length` bodies,
//! and hard limits on every variable-length section so malformed or
//! hostile input is rejected with a clear error instead of unbounded
//! allocation. The parser operates on any [`BufRead`], so tests drive it
//! with in-memory byte slices.

use std::io::{BufRead, Write};

/// Hard cap on one header line (request line included), bytes.
pub const MAX_LINE_LEN: usize = 8 * 1024;
/// Hard cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;

/// A parse-level failure, mapped onto the HTTP status the server replies
/// with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request syntax (400).
    BadRequest(String),
    /// Body exceeds the configured limit (413).
    TooLarge(String),
    /// Socket-level failure (connection dropped mid-request, …).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(m) => write!(f, "payload too large: {m}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::BadRequest("connection closed mid-request".into())
        } else {
            HttpError::Io(e)
        }
    }
}

/// A parsed HTTP/1.x request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, query string stripped.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter named `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Reads and parses one request from `r`, rejecting bodies larger
    /// than `max_body` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::BadRequest`] on any syntax violation,
    /// [`HttpError::TooLarge`] when the declared body exceeds `max_body`,
    /// and [`HttpError::Io`] on socket failures.
    pub fn read_from(r: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
        let line = read_line(r)?;
        let mut parts = line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?;
        if !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(HttpError::BadRequest(format!("bad method {method:?}")));
        }
        let target = parts
            .next()
            .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
        let version = parts
            .next()
            .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
        if parts.next().is_some() {
            return Err(HttpError::BadRequest("extra tokens in request line".into()));
        }
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadRequest(format!(
                "unsupported version {version:?}"
            )));
        }
        if !target.starts_with('/') {
            return Err(HttpError::BadRequest(format!("bad target {target:?}")));
        }
        let (path, query) = parse_target(target);

        let mut headers = Vec::new();
        loop {
            let line = read_line(r)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::BadRequest("too many headers".into()));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::BadRequest(format!("header without colon: {line:?}")))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::BadRequest(format!("bad header name {name:?}")));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }

        let mut body = Vec::new();
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.as_str());
        if let Some(v) = content_length {
            let n: usize = v
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?;
            if n > max_body {
                return Err(HttpError::TooLarge(format!(
                    "body of {n} bytes exceeds limit of {max_body}"
                )));
            }
            body = vec![0u8; n];
            r.read_exact(&mut body)?;
        }
        if headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
        {
            return Err(HttpError::BadRequest(
                "transfer-encoding not supported".into(),
            ));
        }

        Ok(Request {
            method: method.to_owned(),
            path,
            query,
            headers,
            body,
        })
    }
}

/// Splits a request target into path and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_owned(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_owned(), v.to_owned()),
                    None => (kv.to_owned(), String::new()),
                })
                .collect();
            (path.to_owned(), query)
        }
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the terminator.
fn read_line(r: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Err(HttpError::BadRequest("empty request".into()));
                }
                return Err(HttpError::BadRequest("connection closed mid-line".into()));
            }
            _ => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| HttpError::BadRequest("non-utf8 header line".into()));
                }
                if buf.len() >= MAX_LINE_LEN {
                    return Err(HttpError::BadRequest("header line too long".into()));
                }
                buf.push(byte[0]);
            }
        }
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Content type header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a plaintext body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// 200 with a binary body.
    pub fn bytes(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type: "application/octet-stream",
            body,
        }
    }

    /// Canonical reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        reason_phrase(self.status)
    }

    /// Serializes the full response (headers + body) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Canonical reason phrase for an HTTP status code.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes the status line and headers of a *streaming* response. Unlike
/// [`Response::write_to`] there is no `content-length`: the body is
/// delimited by connection close (the server speaks one request per
/// connection), so the caller can write records incrementally — flushing
/// after each one — and simply drop the connection when done.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_stream_head(
    w: &mut dyn Write,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\nconnection: close\r\n\r\n",
        status,
        reason_phrase(status),
        content_type
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        Request::read_from(&mut &bytes[..], 1 << 20)
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(b"GET /metrics?verbose=1&raw HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("raw"), Some(""));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /predict HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_oversized_body() {
        let r = Request::read_from(
            &mut &b"POST /p HTTP/1.1\r\nContent-Length: 100\r\n\r\n"[..],
            10,
        );
        assert!(matches!(r, Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn rejects_bad_request_line() {
        for bad in [
            &b""[..],
            b"\r\n",
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 junk\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::BadRequest(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn response_serializes_with_length() {
        let mut out = Vec::new();
        Response::text(200, "ok\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 3\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok\n"), "{text}");
    }
}
