//! Service observability: request counters, queue depth, a batch-size
//! histogram and request-latency quantiles, rendered as a plaintext
//! `GET /metrics` document in the Prometheus exposition style. The
//! process-wide `mfaplace_rt::timer` counters and scope timers ride along
//! under `mfaplace_rt_*` names, so kernel-level instrumentation shows up
//! in the same scrape.
//!
//! With the model fleet the registry is two-level: the original
//! un-labelled families (`mfaplace_queue_depth`, `mfaplace_batch_size`,
//! `mfaplace_engine_info`, …) stay as **aggregates** across every slot —
//! existing dashboards keep working — while a [`SlotMetrics`] handle (one
//! per fleet slot) additionally maintains `mfaplace_slot_*` families
//! labelled `{slot="…"}`. Point-in-time gauges (model info, engine) are
//! last-writer-wins at the aggregate level; the per-slot copies are the
//! authoritative ones in a multi-slot deployment.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mfaplace_core::PlanCacheStats;

/// Upper bucket bounds of the batch-size histogram (last bucket is +Inf).
pub const BATCH_BUCKETS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Number of most-recent request latencies kept for quantile estimates.
const LATENCY_WINDOW: usize = 4096;

/// Per-slot slice of the registry, rendered under `mfaplace_slot_*`.
#[derive(Default)]
struct SlotStats {
    requests: BTreeMap<u16, u64>,
    queue_depth: u64,
    queue_rejections: u64,
    deadline_misses: u64,
    batches: u64,
    batched_items: u64,
    model_name: String,
    model_version: u64,
    engine_name: String,
    precision_name: String,
    plan_ops: u64,
    plan_arena_bytes: u64,
    plan_levels: u64,
    plan_copies_elided: u64,
}

#[derive(Default)]
struct Inner {
    requests_total: BTreeMap<(String, u16), u64>,
    batch_hist: [u64; BATCH_BUCKETS.len() + 1],
    batches_total: u64,
    batched_items_total: u64,
    latencies_us: Vec<u64>,
    latency_next: usize,
    queue_depth: u64,
    queue_rejections: u64,
    deadline_misses: u64,
    model_version: u64,
    model_name: String,
    engine_name: String,
    precision_name: String,
    plan_ops: u64,
    plan_arena_bytes: u64,
    plan_levels: u64,
    plan_copies_elided: u64,
    slots: BTreeMap<String, SlotStats>,
    plan_cache: Option<PlanCacheStats>,
}

/// Thread-safe metrics registry shared by the server, batcher and worker.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
    /// Extra exposition sources appended to every render — how subsystems
    /// outside this crate (e.g. the job engine) publish their own families
    /// into the same `/metrics` document.
    externals: Mutex<Vec<Box<dyn Fn() -> String + Send + Sync>>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Counts one completed request on `endpoint` with HTTP `status`.
    pub fn record_request(&self, endpoint: &str, status: u16) {
        let mut m = self.lock();
        *m.requests_total
            .entry((endpoint.to_owned(), status))
            .or_insert(0) += 1;
    }

    /// Counts one executed batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        let mut m = self.lock();
        let idx = BATCH_BUCKETS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(BATCH_BUCKETS.len());
        m.batch_hist[idx] += 1;
        m.batches_total += 1;
        m.batched_items_total += size as u64;
    }

    /// Records one request's end-to-end latency.
    pub fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut m = self.lock();
        if m.latencies_us.len() < LATENCY_WINDOW {
            m.latencies_us.push(us);
        } else {
            let at = m.latency_next % LATENCY_WINDOW;
            m.latencies_us[at] = us;
        }
        m.latency_next = (m.latency_next + 1) % LATENCY_WINDOW;
    }

    /// Sets the queue-depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.lock().queue_depth = depth as u64;
    }

    /// Counts one request rejected due to a full queue.
    pub fn record_queue_rejection(&self) {
        self.lock().queue_rejections += 1;
    }

    /// Counts one request dropped for missing its deadline.
    pub fn record_deadline_miss(&self) {
        self.lock().deadline_misses += 1;
    }

    /// Publishes the currently served model (name + hot-reload version).
    pub fn set_model(&self, name: &str, version: u64) {
        let mut m = self.lock();
        m.model_name = name.to_owned();
        m.model_version = version;
    }

    /// Publishes the active inference engine (`"tape"` / `"plan"` /
    /// `"quant"`).
    pub fn set_engine(&self, name: &str) {
        self.lock().engine_name = name.to_owned();
    }

    /// Publishes the numeric precision forwards run at (`"f32"` /
    /// `"int8"` / `"f16"`).
    pub fn set_precision(&self, name: &str) {
        self.lock().precision_name = name.to_owned();
    }

    /// Publishes the compiled-plan gauges (op count, arena bytes, scheduler
    /// level count and elided-copy count of the peak-memory plan). Zeroed
    /// while no plan is compiled.
    pub fn set_plan_stats(&self, ops: u64, arena_bytes: u64, levels: u64, copies_elided: u64) {
        let mut m = self.lock();
        m.plan_ops = ops;
        m.plan_arena_bytes = arena_bytes;
        m.plan_levels = levels;
        m.plan_copies_elided = copies_elided;
    }

    /// Creates the per-slot handle for `name`, registering the slot in the
    /// rendered output immediately.
    pub fn slot(self: &Arc<Self>, name: &str) -> SlotMetrics {
        self.lock().slots.entry(name.to_owned()).or_default();
        SlotMetrics {
            metrics: self.clone(),
            slot: name.to_owned(),
        }
    }

    /// Drops `name`'s `mfaplace_slot_*` series (slot removed from the
    /// fleet) and re-derives the aggregate queue depth from the survivors.
    pub fn remove_slot(&self, name: &str) {
        let mut m = self.lock();
        m.slots.remove(name);
        m.queue_depth = m.slots.values().map(|s| s.queue_depth).sum();
    }

    /// Counts one completed predict on `slot` with HTTP `status`.
    pub fn record_slot_request(&self, slot: &str, status: u16) {
        let mut m = self.lock();
        *m.slots
            .entry(slot.to_owned())
            .or_default()
            .requests
            .entry(status)
            .or_insert(0) += 1;
    }

    /// Publishes the shared plan cache's counters (entries, bytes, budget,
    /// hits/misses/evictions) for the next render.
    pub fn set_plan_cache_stats(&self, stats: PlanCacheStats) {
        self.lock().plan_cache = Some(stats);
    }

    /// Registers an extra exposition source: `render_fn` is called on
    /// every [`Metrics::render`] and its output appended verbatim. The
    /// callback must return complete, newline-terminated exposition lines
    /// and must not call back into this registry.
    pub fn register_external(&self, render_fn: Box<dyn Fn() -> String + Send + Sync>) {
        self.externals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(render_fn);
    }

    /// Renders the plaintext exposition document.
    pub fn render(&self) -> String {
        let m = self.lock();
        let mut out = String::new();

        out.push_str("# TYPE mfaplace_requests_total counter\n");
        for ((endpoint, status), n) in &m.requests_total {
            out.push_str(&format!(
                "mfaplace_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {n}\n"
            ));
        }

        out.push_str("# TYPE mfaplace_queue_depth gauge\n");
        out.push_str(&format!("mfaplace_queue_depth {}\n", m.queue_depth));
        out.push_str(&format!(
            "mfaplace_queue_rejections_total {}\n",
            m.queue_rejections
        ));
        out.push_str(&format!(
            "mfaplace_deadline_misses_total {}\n",
            m.deadline_misses
        ));

        out.push_str("# TYPE mfaplace_batch_size histogram\n");
        let mut cumulative = 0;
        for (i, &bound) in BATCH_BUCKETS.iter().enumerate() {
            cumulative += m.batch_hist[i];
            out.push_str(&format!(
                "mfaplace_batch_size_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += m.batch_hist[BATCH_BUCKETS.len()];
        out.push_str(&format!(
            "mfaplace_batch_size_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!("mfaplace_batch_size_count {}\n", m.batches_total));
        out.push_str(&format!(
            "mfaplace_batch_size_sum {}\n",
            m.batched_items_total
        ));

        if !m.latencies_us.is_empty() {
            let mut sorted = m.latencies_us.clone();
            sorted.sort_unstable();
            out.push_str("# TYPE mfaplace_request_latency_seconds summary\n");
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
                out.push_str(&format!(
                    "mfaplace_request_latency_seconds{{quantile=\"{label}\"}} {:.6}\n",
                    sorted[idx] as f64 / 1e6
                ));
            }
            out.push_str(&format!(
                "mfaplace_request_latency_seconds_count {}\n",
                sorted.len()
            ));
        }

        out.push_str(&format!(
            "mfaplace_model_info{{name=\"{}\"}} 1\n",
            m.model_name
        ));
        out.push_str(&format!("mfaplace_model_version {}\n", m.model_version));

        out.push_str(&format!(
            "mfaplace_engine_info{{engine=\"{}\"}} 1\n",
            m.engine_name
        ));
        out.push_str(&format!(
            "mfaplace_precision_info{{precision=\"{}\"}} 1\n",
            m.precision_name
        ));
        // Process-global SIMD kernel backend; read at render time so the
        // gauge always reflects the dispatcher's actual state (the CI
        // consistency check compares this against `mfaplace kernels`).
        out.push_str(&format!(
            "mfaplace_kernel_backend{{backend=\"{}\"}} 1\n",
            mfaplace_tensor::simd::active().name()
        ));
        out.push_str("# TYPE mfaplace_infer_plan_ops gauge\n");
        out.push_str(&format!("mfaplace_infer_plan_ops {}\n", m.plan_ops));
        out.push_str("# TYPE mfaplace_infer_plan_arena_bytes gauge\n");
        out.push_str(&format!(
            "mfaplace_infer_plan_arena_bytes {}\n",
            m.plan_arena_bytes
        ));
        out.push_str("# TYPE mfaplace_infer_plan_levels gauge\n");
        out.push_str(&format!("mfaplace_infer_plan_levels {}\n", m.plan_levels));
        out.push_str("# TYPE mfaplace_infer_plan_copies_elided gauge\n");
        out.push_str(&format!(
            "mfaplace_infer_plan_copies_elided {}\n",
            m.plan_copies_elided
        ));

        for (name, s) in &m.slots {
            for (status, n) in &s.requests {
                out.push_str(&format!(
                    "mfaplace_slot_requests_total{{slot=\"{name}\",status=\"{status}\"}} {n}\n"
                ));
            }
            out.push_str(&format!(
                "mfaplace_slot_queue_depth{{slot=\"{name}\"}} {}\n",
                s.queue_depth
            ));
            out.push_str(&format!(
                "mfaplace_slot_queue_rejections_total{{slot=\"{name}\"}} {}\n",
                s.queue_rejections
            ));
            out.push_str(&format!(
                "mfaplace_slot_deadline_misses_total{{slot=\"{name}\"}} {}\n",
                s.deadline_misses
            ));
            out.push_str(&format!(
                "mfaplace_slot_batches_total{{slot=\"{name}\"}} {}\n",
                s.batches
            ));
            out.push_str(&format!(
                "mfaplace_slot_batched_items_total{{slot=\"{name}\"}} {}\n",
                s.batched_items
            ));
            out.push_str(&format!(
                "mfaplace_slot_model_info{{slot=\"{name}\",name=\"{}\"}} 1\n",
                s.model_name
            ));
            out.push_str(&format!(
                "mfaplace_slot_model_version{{slot=\"{name}\"}} {}\n",
                s.model_version
            ));
            out.push_str(&format!(
                "mfaplace_slot_engine_info{{slot=\"{name}\",engine=\"{}\"}} 1\n",
                s.engine_name
            ));
            out.push_str(&format!(
                "mfaplace_slot_precision_info{{slot=\"{name}\",precision=\"{}\"}} 1\n",
                s.precision_name
            ));
            out.push_str(&format!(
                "mfaplace_slot_plan_ops{{slot=\"{name}\"}} {}\n",
                s.plan_ops
            ));
            out.push_str(&format!(
                "mfaplace_slot_plan_arena_bytes{{slot=\"{name}\"}} {}\n",
                s.plan_arena_bytes
            ));
            out.push_str(&format!(
                "mfaplace_slot_plan_levels{{slot=\"{name}\"}} {}\n",
                s.plan_levels
            ));
            out.push_str(&format!(
                "mfaplace_slot_plan_copies_elided{{slot=\"{name}\"}} {}\n",
                s.plan_copies_elided
            ));
        }

        if let Some(pc) = &m.plan_cache {
            out.push_str("# TYPE mfaplace_plan_cache_bytes gauge\n");
            out.push_str(&format!("mfaplace_plan_cache_entries {}\n", pc.entries));
            out.push_str(&format!("mfaplace_plan_cache_bytes {}\n", pc.bytes));
            out.push_str(&format!("mfaplace_plan_cache_max_bytes {}\n", pc.max_bytes));
            out.push_str(&format!("mfaplace_plan_cache_hits_total {}\n", pc.hits));
            out.push_str(&format!("mfaplace_plan_cache_misses_total {}\n", pc.misses));
            out.push_str(&format!(
                "mfaplace_plan_cache_evictions_total {}\n",
                pc.evictions
            ));
        }
        drop(m);

        // Families published by registered subsystems (e.g. the job
        // engine's `mfaplace_jobs_*`).
        for external in self
            .externals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            out.push_str(&external());
        }

        // Process-wide runtime counters and scope timers.
        let snap = mfaplace_rt::timer::snapshot();
        for (name, v) in &snap.counters {
            out.push_str(&format!("mfaplace_rt_counter{{name=\"{name}\"}} {v}\n"));
        }
        for (name, stat) in &snap.timers {
            out.push_str(&format!(
                "mfaplace_rt_timer_calls{{scope=\"{name}\"}} {}\n",
                stat.calls
            ));
            out.push_str(&format!(
                "mfaplace_rt_timer_seconds_total{{scope=\"{name}\"}} {:.6}\n",
                stat.total.as_secs_f64()
            ));
        }
        out
    }
}

/// A per-slot view of the shared [`Metrics`] registry. Every recording
/// method updates both the slot's `mfaplace_slot_*` series and the
/// fleet-wide aggregate family under one lock, so the two can never
/// disagree about what was counted.
#[derive(Clone)]
pub struct SlotMetrics {
    metrics: Arc<Metrics>,
    slot: String,
}

impl SlotMetrics {
    /// The underlying shared registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The slot this handle records under.
    pub fn slot_name(&self) -> &str {
        &self.slot
    }

    fn with_slot(&self, f: impl FnOnce(&mut SlotStats, &mut Inner)) {
        let mut m = self.metrics.lock();
        // Detach the slot entry so both it and the aggregates can be
        // borrowed mutably; re-inserted below.
        let mut s = m.slots.remove(&self.slot).unwrap_or_default();
        f(&mut s, &mut m);
        m.slots.insert(self.slot.clone(), s);
    }

    /// Counts one executed batch of `size` requests on this slot.
    pub fn record_batch(&self, size: usize) {
        self.metrics.record_batch(size);
        self.with_slot(|s, _| {
            s.batches += 1;
            s.batched_items += size as u64;
        });
    }

    /// Sets this slot's queue-depth gauge; the aggregate becomes the sum
    /// over all live slots.
    pub fn set_queue_depth(&self, depth: usize) {
        self.with_slot(|s, m| {
            s.queue_depth = depth as u64;
            m.queue_depth = m.slots.values().map(|o| o.queue_depth).sum::<u64>() + s.queue_depth;
        });
    }

    /// Counts one request rejected by this slot's full queue.
    pub fn record_queue_rejection(&self) {
        self.with_slot(|s, m| {
            s.queue_rejections += 1;
            m.queue_rejections += 1;
        });
    }

    /// Counts one request dropped on this slot for missing its deadline.
    pub fn record_deadline_miss(&self) {
        self.with_slot(|s, m| {
            s.deadline_misses += 1;
            m.deadline_misses += 1;
        });
    }

    /// Publishes this slot's served model (aggregate copy is last-writer-
    /// wins across slots).
    pub fn set_model(&self, name: &str, version: u64) {
        self.with_slot(|s, m| {
            s.model_name = name.to_owned();
            s.model_version = version;
            m.model_name = name.to_owned();
            m.model_version = version;
        });
    }

    /// Publishes this slot's active engine (aggregate copy is last-writer-
    /// wins across slots).
    pub fn set_engine(&self, name: &str) {
        self.with_slot(|s, m| {
            s.engine_name = name.to_owned();
            m.engine_name = name.to_owned();
        });
    }

    /// Publishes this slot's forward precision (aggregate copy is
    /// last-writer-wins across slots).
    pub fn set_precision(&self, name: &str) {
        self.with_slot(|s, m| {
            s.precision_name = name.to_owned();
            m.precision_name = name.to_owned();
        });
    }

    /// Publishes this slot's compiled-plan gauges (aggregate copy is
    /// last-writer-wins across slots).
    pub fn set_plan_stats(&self, ops: u64, arena_bytes: u64, levels: u64, copies_elided: u64) {
        self.with_slot(|s, m| {
            s.plan_ops = ops;
            s.plan_arena_bytes = arena_bytes;
            s.plan_levels = levels;
            s.plan_copies_elided = copies_elided;
            m.plan_ops = ops;
            m.plan_arena_bytes = arena_bytes;
            m.plan_levels = levels;
            m.plan_copies_elided = copies_elided;
        });
    }

    /// Counts one completed predict on this slot with HTTP `status`.
    pub fn record_request(&self, status: u16) {
        self.with_slot(|s, _| {
            *s.requests.entry(status).or_insert(0) += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_families() {
        let m = Metrics::new();
        m.record_request("/predict", 200);
        m.record_request("/predict", 200);
        m.record_request("/metrics", 200);
        m.record_batch(1);
        m.record_batch(8);
        m.record_batch(100);
        m.record_latency(Duration::from_millis(2));
        m.record_latency(Duration::from_millis(4));
        m.set_queue_depth(3);
        m.record_queue_rejection();
        m.record_deadline_miss();
        m.set_model("Ours", 2);
        m.set_engine("plan");
        m.set_plan_stats(42, 1024, 9, 3);

        let text = m.render();
        assert!(
            text.contains("mfaplace_requests_total{endpoint=\"/predict\",status=\"200\"} 2"),
            "{text}"
        );
        assert!(text.contains("mfaplace_queue_depth 3"), "{text}");
        assert!(text.contains("mfaplace_queue_rejections_total 1"), "{text}");
        assert!(text.contains("mfaplace_deadline_misses_total 1"), "{text}");
        assert!(
            text.contains("mfaplace_batch_size_bucket{le=\"8\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_batch_size_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("mfaplace_batch_size_sum 109"), "{text}");
        assert!(
            text.contains("mfaplace_request_latency_seconds{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("mfaplace_model_version 2"), "{text}");
        assert!(
            text.contains("mfaplace_model_info{name=\"Ours\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_engine_info{engine=\"plan\"} 1"),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "mfaplace_kernel_backend{{backend=\"{}\"}} 1",
                mfaplace_tensor::simd::active().name()
            )),
            "{text}"
        );
        assert!(text.contains("mfaplace_infer_plan_ops 42"), "{text}");
        assert!(
            text.contains("mfaplace_infer_plan_arena_bytes 1024"),
            "{text}"
        );
        assert!(text.contains("mfaplace_infer_plan_levels 9"), "{text}");
        assert!(
            text.contains("mfaplace_infer_plan_copies_elided 3"),
            "{text}"
        );
    }

    #[test]
    fn slot_metrics_update_both_levels() {
        let m = Arc::new(Metrics::new());
        let a = m.slot("alpha");
        let b = m.slot("beta");
        a.set_model("UNet", 1);
        a.set_engine("plan");
        a.record_batch(3);
        a.set_queue_depth(2);
        b.set_queue_depth(5);
        a.record_queue_rejection();
        b.record_deadline_miss();
        a.set_plan_stats(7, 4096, 5, 2);
        a.record_request(200);
        a.record_request(200);
        m.record_slot_request("beta", 504);
        m.set_plan_cache_stats(PlanCacheStats {
            entries: 2,
            bytes: 99,
            max_bytes: 1000,
            hits: 4,
            misses: 2,
            evictions: 1,
        });

        let text = m.render();
        // Aggregates keep working.
        assert!(text.contains("mfaplace_queue_depth 7"), "{text}");
        assert!(text.contains("mfaplace_queue_rejections_total 1"), "{text}");
        assert!(text.contains("mfaplace_deadline_misses_total 1"), "{text}");
        assert!(text.contains("mfaplace_batch_size_sum 3"), "{text}");
        // Per-slot families.
        assert!(
            text.contains("mfaplace_slot_requests_total{slot=\"alpha\",status=\"200\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_slot_requests_total{slot=\"beta\",status=\"504\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_slot_queue_depth{slot=\"alpha\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_slot_queue_depth{slot=\"beta\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_slot_model_info{slot=\"alpha\",name=\"UNet\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_slot_engine_info{slot=\"alpha\",engine=\"plan\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_slot_plan_arena_bytes{slot=\"alpha\"} 4096"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_slot_plan_levels{slot=\"alpha\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("mfaplace_slot_plan_copies_elided{slot=\"alpha\"} 2"),
            "{text}"
        );
        // Plan-cache gauges.
        assert!(text.contains("mfaplace_plan_cache_entries 2"), "{text}");
        assert!(text.contains("mfaplace_plan_cache_bytes 99"), "{text}");
        assert!(text.contains("mfaplace_plan_cache_hits_total 4"), "{text}");
        assert!(
            text.contains("mfaplace_plan_cache_evictions_total 1"),
            "{text}"
        );

        // Removal drops the series and re-derives the aggregate depth.
        m.remove_slot("beta");
        let text = m.render();
        assert!(!text.contains("slot=\"beta\""), "{text}");
        assert!(text.contains("mfaplace_queue_depth 2"), "{text}");
    }

    #[test]
    fn external_sources_are_appended_to_render() {
        let m = Metrics::new();
        m.register_external(Box::new(|| "mfaplace_jobs_running 3\n".to_owned()));
        let n = Arc::new(Mutex::new(0u64));
        let n2 = n.clone();
        m.register_external(Box::new(move || {
            format!("mfaplace_jobs_queue_depth {}\n", n2.lock().unwrap())
        }));
        assert!(m.render().contains("mfaplace_jobs_running 3"));
        assert!(m.render().contains("mfaplace_jobs_queue_depth 0"));
        *n.lock().unwrap() = 9;
        assert!(m.render().contains("mfaplace_jobs_queue_depth 9"));
    }

    #[test]
    fn latency_window_wraps_without_growing() {
        let m = Metrics::new();
        for i in 0..(LATENCY_WINDOW + 10) {
            m.record_latency(Duration::from_micros(i as u64));
        }
        assert_eq!(m.lock().latencies_us.len(), LATENCY_WINDOW);
    }
}
