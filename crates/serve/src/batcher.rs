//! The dynamic micro-batcher and the hot-swappable model slot.
//!
//! Requests enter a bounded queue ([`Batcher::submit`]); a dedicated
//! worker thread coalesces up to `max_batch` of them within a
//! `batch_window` and runs **one** `[N, C, H, W]` forward per batch
//! through the [`ModelSlot`]. Because the batched kernels are bitwise
//! identical per sample to single-item inference (asserted by
//! `mfaplace-core`'s predictor tests), coalescing never changes a
//! response — it only amortizes per-forward overhead across concurrent
//! requests.
//!
//! Robustness properties:
//!
//! - **Backpressure** — `submit` fails fast with [`SubmitError::QueueFull`]
//!   once `queue_bound` requests are waiting (the server maps this to 429).
//! - **Deadlines** — each job carries an absolute deadline; jobs that
//!   expire while queued are answered with [`JobError::DeadlineExceeded`]
//!   instead of occupying batch slots (mapped to 504).
//! - **Graceful drain** — [`Batcher::shutdown`] stops new submissions
//!   ([`SubmitError::Draining`], mapped to 503) while the worker finishes
//!   everything already queued before exiting.
//! - **Hot reload** — [`ModelSlot::reload`] builds and validates the new
//!   checkpoint completely before atomically swapping it in, so a bad
//!   file can never take down or corrupt the serving model.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mfaplace_core::loader::{load_predictor_with_cache, LoadOptions};
use mfaplace_core::predictor::{Engine, ModelPredictor};
use mfaplace_core::PlanCache;
use mfaplace_models::{AnyModel, ArchSpec};
use mfaplace_rt::timer::ScopeTimer;
use mfaplace_tensor::Tensor;

use crate::metrics::{Metrics, SlotMetrics};

/// Name of the implicit slot single-model deployments serve under; the
/// fleet routes requests naming no slot here.
pub const DEFAULT_SLOT: &str = "default";

/// Batching and queueing knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Largest number of requests fused into one forward.
    pub max_batch: usize,
    /// How long the worker waits for more requests after the first one
    /// arrives before running a partial batch.
    pub batch_window: Duration,
    /// Bound on queued (not yet running) requests; submissions beyond it
    /// are rejected.
    pub queue_bound: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            queue_bound: 64,
        }
    }
}

impl BatchConfig {
    /// Applies the `MFAPLACE_MAX_BATCH`, `MFAPLACE_BATCH_WINDOW_MS` and
    /// `MFAPLACE_QUEUE_BOUND` environment overrides to `self`.
    #[must_use]
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(n) = env_usize("MFAPLACE_MAX_BATCH") {
            self.max_batch = n.max(1);
        }
        if let Some(ms) = env_usize("MFAPLACE_BATCH_WINDOW_MS") {
            self.batch_window = Duration::from_millis(ms as u64);
        }
        if let Some(n) = env_usize("MFAPLACE_QUEUE_BOUND") {
            self.queue_bound = n.max(1);
        }
        self
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later (429).
    QueueFull,
    /// The service is draining for shutdown (503).
    Draining,
}

/// Why an accepted job failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's deadline passed before a batch picked it up (504).
    DeadlineExceeded,
    /// The model forward failed (500).
    ModelError(String),
}

struct Job {
    input: Tensor,
    deadline: Instant,
    tx: mpsc::Sender<Result<Tensor, JobError>>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
}

/// The bounded request queue plus its coalescing policy.
pub struct Batcher {
    state: Mutex<QueueState>,
    cv: Condvar,
    cfg: BatchConfig,
    metrics: SlotMetrics,
}

impl Batcher {
    /// Creates an empty batcher recording under the default slot.
    pub fn new(cfg: BatchConfig, metrics: Arc<Metrics>) -> Self {
        Batcher::for_slot(cfg, metrics.slot(DEFAULT_SLOT))
    }

    /// Creates an empty batcher recording under a named fleet slot.
    pub fn for_slot(cfg: BatchConfig, metrics: SlotMetrics) -> Self {
        Batcher {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            cfg,
            metrics,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues one `[C, H, W]` feature stack for prediction. On success
    /// the returned receiver yields the `[H, W]` level map (or a
    /// [`JobError`]) once a batch containing the job has run.
    ///
    /// # Errors
    ///
    /// Fails fast when the queue is at its bound or the batcher is
    /// draining.
    pub fn submit(
        &self,
        input: Tensor,
        deadline: Instant,
    ) -> Result<mpsc::Receiver<Result<Tensor, JobError>>, SubmitError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.lock();
            if state.draining {
                return Err(SubmitError::Draining);
            }
            if state.jobs.len() >= self.cfg.queue_bound {
                self.metrics.record_queue_rejection();
                return Err(SubmitError::QueueFull);
            }
            state.jobs.push_back(Job {
                input,
                deadline,
                tx,
            });
            self.metrics.set_queue_depth(state.jobs.len());
        }
        self.cv.notify_all();
        Ok(rx)
    }

    /// Stops accepting new jobs and wakes the worker so it can finish the
    /// queue and exit.
    pub fn shutdown(&self) {
        self.lock().draining = true;
        self.cv.notify_all();
    }

    /// Collects the next batch, honoring the batching window, or returns
    /// `None` when draining and empty (worker should exit).
    fn next_batch(&self) -> Option<Vec<Job>> {
        let mut state = self.lock();
        loop {
            if !state.jobs.is_empty() {
                break;
            }
            if state.draining {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        // First job seen: hold the batch open for the window (or until
        // full / draining) to give concurrent requests a chance to fuse.
        let window_ends = Instant::now() + self.cfg.batch_window;
        while state.jobs.len() < self.cfg.max_batch && !state.draining {
            let now = Instant::now();
            if now >= window_ends {
                break;
            }
            let (next, timeout) = self
                .cv
                .wait_timeout(state, window_ends - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        let take = state.jobs.len().min(self.cfg.max_batch);
        let batch: Vec<Job> = state.jobs.drain(..take).collect();
        self.metrics.set_queue_depth(state.jobs.len());
        Some(batch)
    }

    /// Runs the batching loop until [`Batcher::shutdown`] is called and
    /// the queue is drained. Call from a dedicated thread.
    pub fn run_worker(&self, slot: &ModelSlot) {
        while let Some(batch) = self.next_batch() {
            let now = Instant::now();
            let (live, expired): (Vec<Job>, Vec<Job>) =
                batch.into_iter().partition(|j| j.deadline > now);
            for job in expired {
                self.metrics.record_deadline_miss();
                // Receiver may have given up; ignore send failures.
                let _ = job.tx.send(Err(JobError::DeadlineExceeded));
            }
            if live.is_empty() {
                continue;
            }
            let inputs: Vec<Tensor> = live.iter().map(|j| j.input.clone()).collect();
            self.metrics.record_batch(inputs.len());
            let outputs = slot.predict_batch(&inputs);
            match outputs {
                Ok(levels) => {
                    for (job, level) in live.into_iter().zip(levels) {
                        let _ = job.tx.send(Ok(level));
                    }
                }
                Err(msg) => {
                    for job in live {
                        let _ = job.tx.send(Err(JobError::ModelError(msg.clone())));
                    }
                }
            }
        }
    }
}

struct LoadedModel {
    predictor: ModelPredictor<AnyModel>,
    spec: ArchSpec,
    version: u64,
}

/// The currently served model behind an atomic-swap lock.
///
/// Every publication of slot state to metrics (engine gauge, model
/// info/version) happens while the state lock is held, so concurrent
/// `set_engine` / `reload` calls publish in the same order they mutate —
/// the gauges can never end up describing a state the slot is not in.
pub struct ModelSlot {
    name: String,
    inner: Mutex<LoadedModel>,
    plan_cache: Arc<PlanCache>,
    metrics: SlotMetrics,
}

impl ModelSlot {
    /// Loads the initial model from `path` under the default slot name,
    /// with a private plan cache sized from the environment.
    ///
    /// # Errors
    ///
    /// Returns a human-readable error when the checkpoint cannot be
    /// loaded.
    pub fn load(path: &str, opts: LoadOptions, metrics: Arc<Metrics>) -> Result<Self, String> {
        Self::load_named(
            DEFAULT_SLOT,
            path,
            opts,
            Arc::new(PlanCache::from_env()),
            metrics,
        )
    }

    /// Loads the initial model from `path` as fleet slot `name`, compiling
    /// inference plans into the shared `plan_cache` (keyed by the file's
    /// content hash, so slots loaded from byte-identical checkpoints share
    /// one compiled plan set).
    ///
    /// # Errors
    ///
    /// Returns a human-readable error when the checkpoint cannot be
    /// loaded.
    pub fn load_named(
        name: &str,
        path: &str,
        opts: LoadOptions,
        plan_cache: Arc<PlanCache>,
        metrics: Arc<Metrics>,
    ) -> Result<Self, String> {
        let (spec, predictor) = load_predictor_with_cache(path, opts, &plan_cache)?;
        let metrics = metrics.slot(name);
        metrics.set_model(spec.arch.model_name(), 1);
        metrics.set_engine(predictor.engine().name());
        metrics.set_precision(predictor.precision().name());
        Ok(ModelSlot {
            name: name.to_owned(),
            inner: Mutex::new(LoadedModel {
                predictor,
                spec,
                version: 1,
            }),
            plan_cache,
            metrics,
        })
    }

    /// Wraps an already-built predictor (tests, in-process serving) under
    /// the default slot name.
    pub fn from_predictor(
        spec: ArchSpec,
        predictor: ModelPredictor<AnyModel>,
        metrics: Arc<Metrics>,
    ) -> Self {
        let plan_cache = predictor.plan_cache().clone();
        let metrics = metrics.slot(DEFAULT_SLOT);
        metrics.set_model(spec.arch.model_name(), 1);
        metrics.set_engine(predictor.engine().name());
        metrics.set_precision(predictor.precision().name());
        ModelSlot {
            name: DEFAULT_SLOT.to_owned(),
            inner: Mutex::new(LoadedModel {
                predictor,
                spec,
                version: 1,
            }),
            plan_cache,
            metrics,
        }
    }

    fn lock(&self) -> MutexGuard<'_, LoadedModel> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The fleet slot name this model serves under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The plan cache this slot's predictor compiles into.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// The served architecture spec (grid size is what inputs must match).
    pub fn spec(&self) -> ArchSpec {
        self.lock().spec
    }

    /// Monotonic version, bumped by every successful [`ModelSlot::reload`].
    pub fn version(&self) -> u64 {
        self.lock().version
    }

    /// The inference engine the served predictor is using.
    pub fn engine(&self) -> Engine {
        self.lock().predictor.engine()
    }

    /// Switches the served predictor between the tape and plan engines
    /// (compiled plans are kept either way) and republishes the engine
    /// gauge — both under the state lock, so a concurrent [`reload`]
    /// cannot interleave and leave the gauge describing the wrong engine.
    ///
    /// [`reload`]: ModelSlot::reload
    pub fn set_engine(&self, engine: Engine) {
        let mut model = self.lock();
        model.predictor.set_engine(engine);
        self.metrics.set_engine(engine.name());
        self.metrics
            .set_precision(model.predictor.precision().name());
    }

    /// Runs one batched forward. Panics inside the model are caught and
    /// reported as errors so a bad batch cannot kill the worker thread.
    ///
    /// # Errors
    ///
    /// Returns the panic/validation message on failure.
    pub fn predict_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>, String> {
        let _t = ScopeTimer::new("serve/forward");
        let mut model = self.lock();
        let spec = model.spec;
        for x in inputs {
            if x.shape() != [6, spec.grid, spec.grid] {
                return Err(format!(
                    "input shape {:?} does not match served model grid {}",
                    x.shape(),
                    spec.grid
                ));
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model.predictor.predict_batch_tensors(inputs)
        }));
        if result.is_ok() {
            // `active_plan_stats` reflects the engine actually serving:
            // quant arena/weight bytes under the quant engine, the f32
            // plan otherwise. Precision is republished because it can
            // flip from "f32" the moment the first quant plan compiles
            // (or back, if a quant build fails and the slot falls back).
            let (ops, arena, levels, elided) =
                model
                    .predictor
                    .active_plan_stats()
                    .map_or((0, 0, 0, 0), |s| {
                        (
                            s.ops as u64,
                            s.arena_bytes as u64,
                            s.levels as u64,
                            s.copies_elided as u64,
                        )
                    });
            self.metrics.set_plan_stats(ops, arena, levels, elided);
            self.metrics
                .set_precision(model.predictor.precision().name());
        }
        result.map_err(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "model forward panicked".into());
            format!("model forward failed: {msg}")
        })
    }

    /// Validates the checkpoint at `path` and atomically swaps it in.
    /// In-flight batches finish on the old model; the swap waits for them.
    ///
    /// # Errors
    ///
    /// Returns a human-readable error (and leaves the old model serving)
    /// when the new checkpoint cannot be loaded or its grid differs from
    /// the served one.
    pub fn reload(&self, path: &str, opts: LoadOptions) -> Result<(u64, ArchSpec), String> {
        // Build and validate entirely before taking the lock: a corrupt
        // file must never interrupt serving. Plans for the new weights go
        // into the same shared cache, keyed by the new file's content hash.
        let (spec, mut predictor) = load_predictor_with_cache(path, opts, &self.plan_cache)?;
        let current_grid = self.spec().grid;
        if spec.grid != current_grid {
            return Err(format!(
                "new checkpoint grid {} differs from served grid {current_grid}; \
                 restart the server to change grids",
                spec.grid
            ));
        }
        let mut slot = self.lock();
        // Keep the engine choice sticky across hot reloads, swap the whole
        // loaded state as one assignment, and publish the gauges before
        // releasing the lock — a concurrent `set_engine` either fully
        // precedes this swap (its choice is the sticky one) or fully
        // follows it (it overrides); no interleaving can desynchronize
        // the served state from the metrics.
        predictor.set_engine(slot.predictor.engine());
        let version = slot.version + 1;
        let engine = predictor.engine();
        *slot = LoadedModel {
            predictor,
            spec,
            version,
        };
        self.metrics.set_model(spec.arch.model_name(), version);
        self.metrics.set_engine(engine.name());
        let precision = slot.predictor.precision();
        self.metrics.set_precision(precision.name());
        Ok((version, spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_core::loader::init_checkpoint;
    use mfaplace_models::Arch;

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("mfaplace_batcher_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn tiny_spec() -> ArchSpec {
        let mut spec = ArchSpec::new(Arch::UNet, 16);
        spec.base_channels = 2;
        spec
    }

    fn tiny_slot(metrics: Arc<Metrics>) -> ModelSlot {
        let path = temp_path("tiny_unet.mfaw");
        init_checkpoint(&tiny_spec(), 1, &path).unwrap();
        ModelSlot::load(&path, LoadOptions::default(), metrics).unwrap()
    }

    fn input(seed: f32) -> Tensor {
        Tensor::from_fn(vec![6, 16, 16], |i| ((i as f32) * 0.01 + seed).sin())
    }

    #[test]
    fn worker_answers_jobs_and_drains_on_shutdown() {
        let metrics = Arc::new(Metrics::new());
        let slot = tiny_slot(metrics.clone());
        let batcher = Arc::new(Batcher::new(
            BatchConfig {
                max_batch: 4,
                batch_window: Duration::from_millis(5),
                queue_bound: 16,
            },
            metrics,
        ));

        let deadline = Instant::now() + Duration::from_secs(10);
        let rxs: Vec<_> = (0..6)
            .map(|i| batcher.submit(input(i as f32), deadline).unwrap())
            .collect();
        let worker = {
            let batcher = batcher.clone();
            std::thread::spawn(move || batcher.run_worker(&slot))
        };
        for rx in rxs {
            let level = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
            assert_eq!(level.shape(), &[16, 16]);
        }
        batcher.shutdown();
        worker.join().unwrap();
        assert_eq!(
            batcher.submit(input(0.0), deadline).err(),
            Some(SubmitError::Draining)
        );
    }

    #[test]
    fn queue_bound_rejects_excess_submissions() {
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(
            BatchConfig {
                max_batch: 4,
                batch_window: Duration::from_millis(1),
                queue_bound: 2,
            },
            metrics,
        );
        // No worker running: the queue fills and stays full.
        let deadline = Instant::now() + Duration::from_secs(10);
        assert!(batcher.submit(input(0.0), deadline).is_ok());
        assert!(batcher.submit(input(1.0), deadline).is_ok());
        assert_eq!(
            batcher.submit(input(2.0), deadline).err(),
            Some(SubmitError::QueueFull)
        );
    }

    #[test]
    fn expired_jobs_get_deadline_errors() {
        let metrics = Arc::new(Metrics::new());
        let slot = tiny_slot(metrics.clone());
        let batcher = Arc::new(Batcher::new(BatchConfig::default(), metrics));
        let rx = batcher
            .submit(input(0.0), Instant::now() - Duration::from_millis(1))
            .unwrap();
        let worker = {
            let batcher = batcher.clone();
            std::thread::spawn(move || batcher.run_worker(&slot))
        };
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)).unwrap(),
            Err(JobError::DeadlineExceeded)
        );
        batcher.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn wrong_input_shape_is_a_model_error_not_a_crash() {
        let metrics = Arc::new(Metrics::new());
        let slot = tiny_slot(metrics);
        let bad = Tensor::zeros(vec![6, 32, 32]);
        let err = slot.predict_batch(std::slice::from_ref(&bad)).unwrap_err();
        assert!(err.contains("grid"), "{err}");
    }

    #[test]
    fn reload_swaps_weights_and_bumps_version() {
        let metrics = Arc::new(Metrics::new());
        let slot = tiny_slot(metrics);
        let x = input(3.0);
        let before = slot.predict_batch(std::slice::from_ref(&x)).unwrap();

        let other = temp_path("tiny_unet_v2.mfaw");
        init_checkpoint(&tiny_spec(), 999, &other).unwrap();
        let (version, spec) = slot.reload(&other, LoadOptions::default()).unwrap();
        assert_eq!(version, 2);
        assert_eq!(spec.arch, Arch::UNet);
        let after = slot.predict_batch(std::slice::from_ref(&x)).unwrap();
        assert_ne!(
            before[0].data(),
            after[0].data(),
            "different weights must change predictions"
        );

        // A corrupt file must be rejected and leave the slot serving.
        let corrupt = temp_path("corrupt.mfaw");
        std::fs::write(&corrupt, b"MFAWgarbage").unwrap();
        assert!(slot.reload(&corrupt, LoadOptions::default()).is_err());
        assert_eq!(slot.version(), 2);
        let still = slot.predict_batch(std::slice::from_ref(&x)).unwrap();
        assert_eq!(after[0].data(), still[0].data());
    }

    /// Regression test for the engine/reload publication race: `reload`
    /// and `set_engine` both mutate the predictor *and* publish a metrics
    /// gauge. Before the fix, `set_engine` published outside the state
    /// lock, so a concurrent reload could interleave and leave the gauge
    /// describing an engine the slot was not using. Both now publish under
    /// the lock, so after any interleaving the gauge must equal the actual
    /// engine.
    #[test]
    fn engine_gauge_stays_consistent_under_concurrent_reloads() {
        let metrics = Arc::new(Metrics::new());
        let slot = Arc::new(tiny_slot(metrics.clone()));
        let other = temp_path("race_unet.mfaw");
        init_checkpoint(&tiny_spec(), 7, &other).unwrap();

        let toggler = {
            let slot = slot.clone();
            std::thread::spawn(move || {
                for i in 0..200 {
                    slot.set_engine(if i % 2 == 0 {
                        Engine::Tape
                    } else {
                        Engine::Plan
                    });
                }
            })
        };
        let reloader = {
            let slot = slot.clone();
            let other = other.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    slot.reload(&other, LoadOptions::default()).unwrap();
                }
            })
        };
        toggler.join().unwrap();
        reloader.join().unwrap();

        let engine = slot.engine().name();
        let gauge = format!("mfaplace_engine_info{{engine=\"{engine}\"}} 1");
        let text = metrics.render();
        assert!(
            text.contains(&gauge),
            "gauge must match the served engine {engine:?}:\n{text}"
        );
        assert_eq!(slot.version(), 21, "every reload must have landed");
        // The slot still serves after the churn.
        let out = slot
            .predict_batch(std::slice::from_ref(&input(1.0)))
            .unwrap();
        assert_eq!(out[0].shape(), &[16, 16]);
    }
}
