//! `mfaplace-serve` — a zero-external-dependency inference service for
//! the congestion-prediction models, built directly on `std::net`.
//!
//! # Architecture
//!
//! ```text
//! client ──HTTP/1.1──▶ accept loop ──▶ handler thread (per connection)
//!                                          │ submit [6,H,W]
//!                                          ▼
//!                                  bounded queue (429 when full)
//!                                          │
//!                                          ▼
//!                                  micro-batch worker
//!                            coalesce ≤ max_batch within window
//!                                          │ one [N,6,H,W] forward
//!                                          ▼
//!                                  ModelSlot (hot-reloadable)
//! ```
//!
//! - [`http`] — minimal HTTP/1.1 parsing/serialization with hard limits.
//! - [`protocol`] — binary wire formats for feature stacks and level
//!   maps, plus server-side featurization of textual design+placement.
//! - [`batcher`] — bounded queue, dynamic micro-batcher, deadlines,
//!   graceful drain, and the hot-swappable [`batcher::ModelSlot`].
//! - [`metrics`] — request/batch/latency metrics rendered as plaintext
//!   `GET /metrics`, including the process-wide `mfaplace_rt::timer`
//!   counters.
//! - [`server`] — the TCP front end and endpoint routing.
//! - [`client`] — a matching blocking client for the CLI and tests.
//!
//! Batching never changes results: batched forwards are bitwise
//! identical per sample to single-item inference (asserted by tests in
//! `mfaplace-core` and in this crate).

pub mod batcher;
pub mod client;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batcher::{BatchConfig, Batcher, JobError, ModelSlot, SubmitError};
pub use metrics::Metrics;
pub use server::{serve, ServeConfig, ServerHandle};
