//! `mfaplace-serve` — a zero-external-dependency inference service for
//! the congestion-prediction models, built directly on `std::net`.
//!
//! # Architecture
//!
//! ```text
//! client ──HTTP/1.1──▶ accept loop ──▶ handler thread (per connection)
//!                                          │ route by slot name
//!                                          │ (header/path; default slot)
//!                                          ▼
//!                                     ModelFleet
//!                              ┌─────────┴─────────┐
//!                        slot "a"              slot "b"     …
//!                  bounded queue (429)    bounded queue (429)
//!                          │                    │
//!                  micro-batch worker    micro-batch worker
//!                          │ one [N,6,H,W] forward each
//!                          ▼                    ▼
//!                  ModelSlot (hot-…)     ModelSlot (hot-reloadable)
//!                          └────────┬───────────┘
//!                       shared byte-bounded PlanCache
//!                     (keyed by checkpoint content hash)
//! ```
//!
//! - [`http`] — minimal HTTP/1.1 parsing/serialization with hard limits.
//! - [`protocol`] — binary wire formats for feature stacks and level
//!   maps, plus server-side featurization of textual design+placement.
//! - [`batcher`] — bounded queue, dynamic micro-batcher, deadlines,
//!   graceful drain, and the hot-swappable [`batcher::ModelSlot`].
//! - [`fleet`] — the [`fleet::ModelFleet`] registry: named slots, per-
//!   tenant admission control, shared compiled-plan cache, zero-downtime
//!   add/remove/reload.
//! - [`metrics`] — request/batch/latency metrics rendered as plaintext
//!   `GET /metrics` — fleet-wide aggregates plus per-slot
//!   `mfaplace_slot_*` families and `mfaplace_plan_cache_*` gauges.
//! - [`server`] — the TCP front end and endpoint routing.
//! - [`client`] — a matching blocking client for the CLI and tests.
//!
//! Batching never changes results: batched forwards are bitwise
//! identical per sample to single-item inference (asserted by tests in
//! `mfaplace-core` and in this crate).

pub mod batcher;
pub mod client;
pub mod fleet;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batcher::{BatchConfig, Batcher, JobError, ModelSlot, SubmitError, DEFAULT_SLOT};
pub use fleet::{FleetSlot, ModelFleet, SlotLimits};
pub use metrics::{Metrics, SlotMetrics};
pub use server::{
    serve, serve_fleet, serve_fleet_with, ExtensionOutcome, ServeConfig, ServeExtension,
    ServerHandle,
};
