//! The TCP front end: accept loop, per-connection request handling, and
//! the graceful-shutdown choreography.
//!
//! One thread accepts connections and spawns a handler thread per
//! connection (requests are small and short-lived; the bounded per-slot
//! batcher queues — not the connection count — are the real concurrency
//! limiter). The [`ModelFleet`] owns one worker thread per slot, each
//! running that slot's micro-batch loop. Shutdown drains in order: stop
//! accepting, finish in-flight connections, drain every slot's queue,
//! then join the workers.
//!
//! Routing: `/predict` and `/predict/design` go to the slot named by the
//! `x-mfaplace-model` header, defaulting to the fleet's default slot —
//! which is what keeps single-model clients wire-compatible. The same
//! endpoints are also reachable per slot at `/models/<name>/predict` and
//! `/models/<name>/predict/design`; `GET /models` lists the fleet and
//! `POST /admin/slots` adds/removes/reloads slots at runtime.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mfaplace_core::loader::LoadOptions;
use mfaplace_core::predictor::Engine;
use mfaplace_tensor::Tensor;

use crate::batcher::{BatchConfig, JobError, ModelSlot, SubmitError};
use crate::fleet::{FleetSlot, ModelFleet, SlotLimits};
use crate::http::{HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::protocol;

/// Server-level knobs (batching knobs live in [`BatchConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:8953` (port `0` picks one).
    pub addr: String,
    /// Batching and queueing configuration.
    pub batch: BatchConfig,
    /// Hard cap on request bodies, bytes.
    pub max_body: usize,
    /// Default per-request deadline when the client sends no
    /// `x-mfaplace-deadline-ms` header.
    pub default_deadline: Duration,
    /// Socket read timeout: a client that stalls mid-request is dropped
    /// after this long.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8953".into(),
            batch: BatchConfig::default().with_env_overrides(),
            max_body: 32 << 20,
            default_deadline: Duration::from_secs(30),
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// What a [`ServeExtension`] did with an offered request.
#[derive(Debug)]
pub enum ExtensionOutcome {
    /// Not this extension's path space; keep looking.
    NotHandled,
    /// Reply with this buffered response.
    Respond(Response),
    /// The extension wrote a complete (typically streaming) response to
    /// the connection itself; `status` is recorded in the request metrics.
    Streamed {
        /// HTTP status the extension sent in its stream head.
        status: u16,
    },
}

/// A pluggable route space mounted into the server, for subsystems that
/// live above this crate (the job engine mounts `/jobs` this way).
/// Extensions are offered every request that no built-in endpoint claims;
/// handlers get the raw connection writer so they can produce streaming
/// (connection-close-delimited) responses via
/// [`crate::http::write_stream_head`].
pub trait ServeExtension: Send + Sync {
    /// Handles `req` or declines it. Runs on the connection's thread.
    fn handle(&self, req: &Request, writer: &mut dyn Write) -> ExtensionOutcome;

    /// Called once during graceful shutdown, after in-flight connections
    /// finish but *before* the fleet's slot workers drain — so extension
    /// work queues that submit predictions can still complete them.
    fn on_shutdown(&self) {}
}

struct Shared {
    metrics: Arc<Metrics>,
    fleet: Arc<ModelFleet>,
    stop: AtomicBool,
    cfg: ServeConfig,
    addr: SocketAddr,
    extensions: Vec<Arc<dyn ServeExtension>>,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] and/or [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    main: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// The served model fleet.
    pub fn fleet(&self) -> Arc<ModelFleet> {
        self.shared.fleet.clone()
    }

    /// Requests a graceful shutdown: stop accepting, finish in-flight
    /// requests, drain the queue. Returns immediately; use
    /// [`ServerHandle::join`] to wait for completion.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Requests shutdown (idempotent) and blocks until the server has
    /// fully drained and exited.
    pub fn join(mut self) {
        trigger_shutdown(&self.shared);
        if let Some(main) = self.main.take() {
            let _ = main.join();
        }
    }

    /// Blocks until the server exits on its own — i.e. until something
    /// (typically `POST /admin/shutdown`) triggers the drain. This is what
    /// the CLI foreground mode uses.
    pub fn wait(mut self) {
        if let Some(main) = self.main.take() {
            let _ = main.join();
        }
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
}

/// Binds `cfg.addr` and starts serving `slot` on background threads —
/// the single-model entry point, wrapping `slot` into a one-slot
/// [`ModelFleet`] (requests naming no slot route to it, so the wire
/// behavior is identical to the pre-fleet server).
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(
    slot: ModelSlot,
    metrics: Arc<Metrics>,
    cfg: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let fleet = Arc::new(ModelFleet::with_plan_cache(
        metrics.clone(),
        cfg.batch,
        slot.plan_cache().clone(),
    ));
    fleet
        .install_slot(slot, SlotLimits::default())
        .map_err(std::io::Error::other)?;
    serve_fleet(fleet, metrics, cfg)
}

/// Binds `cfg.addr` and starts serving an already-populated `fleet` on
/// background threads. Slots added to the fleet later (e.g. via
/// `POST /admin/slots`) become routable immediately.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_fleet(
    fleet: Arc<ModelFleet>,
    metrics: Arc<Metrics>,
    cfg: ServeConfig,
) -> std::io::Result<ServerHandle> {
    serve_fleet_with(fleet, metrics, cfg, Vec::new())
}

/// Like [`serve_fleet`], additionally mounting `extensions`: each request
/// that no built-in endpoint claims is offered to them in order, before
/// the final 404. On graceful shutdown every extension's
/// [`ServeExtension::on_shutdown`] runs after in-flight connections drain
/// and before the fleet's slot workers do.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_fleet_with(
    fleet: Arc<ModelFleet>,
    metrics: Arc<Metrics>,
    cfg: ServeConfig,
    extensions: Vec<Arc<dyn ServeExtension>>,
) -> std::io::Result<ServerHandle> {
    let listener = bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        metrics,
        fleet,
        stop: AtomicBool::new(false),
        cfg,
        addr,
        extensions,
    });
    let main = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("mfaplace-serve-accept".into())
            .spawn(move || accept_loop(&shared, &listener))?
    };
    Ok(ServerHandle {
        shared,
        main: Some(main),
    })
}

fn bind(addr: &str) -> std::io::Result<TcpListener> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    TcpListener::bind(&addrs[..])
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    // Slot workers are owned (spawned and joined) by the fleet itself.
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        conns.retain(|h| !h.is_finished());
        let shared = shared.clone();
        if let Ok(handle) = std::thread::Builder::new()
            .name("mfaplace-serve-conn".into())
            .spawn(move || handle_connection(&shared, stream))
        {
            conns.push(handle);
        }
    }

    // Graceful drain: in-flight connections first (they may still submit
    // jobs), then mounted extensions (their work queues may still submit
    // predictions), then every slot's queue and worker.
    for handle in conns {
        let _ = handle.join();
    }
    for ext in &shared.extensions {
        ext.on_shutdown();
    }
    shared.fleet.shutdown();
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let (endpoint, response) = match Request::read_from(&mut reader, shared.cfg.max_body) {
        Ok(req) => {
            let started = Instant::now();
            let endpoint = req.path.clone();
            let response = match route(shared, &req) {
                Some(response) => response,
                // Not a built-in endpoint: offer it to the mounted
                // extensions, which may stream their reply directly.
                None => match offer_to_extensions(shared, &req, &mut writer) {
                    ExtensionOutcome::Respond(response) => response,
                    ExtensionOutcome::Streamed { status } => {
                        shared.metrics.record_latency(started.elapsed());
                        shared.metrics.record_request(&endpoint, status);
                        return;
                    }
                    ExtensionOutcome::NotHandled => Response::text(404, "no such endpoint\n"),
                },
            };
            shared.metrics.record_latency(started.elapsed());
            (endpoint, response)
        }
        Err(HttpError::BadRequest(m)) => ("<parse>".to_owned(), Response::text(400, m + "\n")),
        Err(HttpError::TooLarge(m)) => ("<parse>".to_owned(), Response::text(413, m + "\n")),
        Err(HttpError::Io(_)) => return,
    };
    shared.metrics.record_request(&endpoint, response.status);
    let _ = response.write_to(&mut writer);
}

fn offer_to_extensions(shared: &Shared, req: &Request, writer: &mut dyn Write) -> ExtensionOutcome {
    for ext in &shared.extensions {
        match ext.handle(req, writer) {
            ExtensionOutcome::NotHandled => continue,
            handled => return handled,
        }
    }
    ExtensionOutcome::NotHandled
}

/// Routes built-in endpoints; `None` means the path belongs to no built-in
/// route space and should be offered to the mounted extensions.
fn route(shared: &Shared, req: &Request) -> Option<Response> {
    // Path-based slot routing: /models, /models/<name>, and the per-slot
    // predict endpoints underneath it.
    if req.path == "/models" || req.path.starts_with("/models/") {
        return Some(route_models(shared, req));
    }
    // Header-based routing for the legacy endpoints: no header means the
    // default slot, which is what keeps single-model clients compatible.
    let slot = req.header("x-mfaplace-model").map(str::to_owned);
    let slot = slot.as_deref();
    Some(match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => {
            shared.fleet.publish_plan_cache_stats();
            Response::text(200, shared.metrics.render())
        }
        ("GET", "/model") => model_info(shared, slot, false),
        ("POST", "/predict") => predict_features(shared, req, slot),
        ("POST", "/predict/design") => predict_design(shared, req, slot),
        ("POST", "/admin/reload") => {
            let path = String::from_utf8_lossy(&req.body).trim().to_owned();
            if path.is_empty() {
                return Some(Response::text(400, "body must be a checkpoint path\n"));
            }
            match shared
                .fleet
                .reload_slot(slot, &path, LoadOptions::default())
            {
                Ok((_, version, spec)) => Response::text(
                    200,
                    format!(
                        "reloaded {} (grid {}) as version {version}\n",
                        spec.arch.model_name(),
                        spec.grid
                    ),
                ),
                Err(m) if is_unknown_slot(&m) => Response::text(404, m + "\n"),
                Err(m) => Response::text(409, m + "\n"),
            }
        }
        ("POST", "/admin/engine") => {
            let name = String::from_utf8_lossy(&req.body).trim().to_owned();
            let fs = match shared.fleet.resolve(slot) {
                Ok(fs) => fs,
                Err(m) => return Some(Response::text(404, m + "\n")),
            };
            match Engine::parse(&name) {
                Some(engine) => {
                    fs.slot().set_engine(engine);
                    Response::text(200, format!("engine {}\n", engine.name()))
                }
                None => Response::text(400, "body must be \"tape\", \"plan\" or \"quant\"\n"),
            }
        }
        ("GET", "/admin/slots") => Response::text(200, fleet_listing(shared)),
        ("POST", "/admin/slots") => admin_slots(shared, req),
        ("POST", "/admin/shutdown") => {
            shared.stop.store(true, Ordering::SeqCst);
            // The throwaway connection unblocking accept comes from a
            // separate thread so this handler can still write its reply.
            let addr = shared.addr;
            std::thread::spawn(move || {
                let _ = TcpStream::connect(addr);
            });
            Response::text(200, "draining\n")
        }
        (
            _,
            "/healthz" | "/metrics" | "/model" | "/predict" | "/predict/design" | "/admin/reload"
            | "/admin/engine" | "/admin/slots" | "/admin/shutdown",
        ) => Response::text(405, "method not allowed\n"),
        _ => return None,
    })
}

/// Routes `/models` (fleet listing) and `/models/<name>[/predict[/design]]`.
fn route_models(shared: &Shared, req: &Request) -> Response {
    let rest = req.path.strip_prefix("/models").unwrap_or_default();
    let (slot, tail) = match rest.strip_prefix('/') {
        None => ("", ""),
        Some(r) => match r.split_once('/') {
            None => (r, ""),
            Some((name, t)) => (name, t),
        },
    };
    match (req.method.as_str(), slot, tail) {
        ("GET", "", "") => Response::text(200, fleet_listing(shared)),
        (_, "", "") => Response::text(405, "method not allowed\n"),
        ("GET", name, "") => model_info(shared, Some(name), true),
        ("POST", name, "predict") => predict_features(shared, req, Some(name)),
        ("POST", name, "predict/design") => predict_design(shared, req, Some(name)),
        (_, _, "" | "predict" | "predict/design") => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "no such endpoint\n"),
    }
}

fn is_unknown_slot(msg: &str) -> bool {
    msg.starts_with("no such model slot")
}

fn fleet_listing(shared: &Shared) -> String {
    let default = shared.fleet.default_name();
    let mut out = String::new();
    for name in shared.fleet.names() {
        let Ok(fs) = shared.fleet.resolve(Some(&name)) else {
            continue; // removed between names() and resolve()
        };
        let spec = fs.slot().spec();
        out.push_str(&format!(
            "{name} model={} grid={} version={} engine={}{}\n",
            spec.arch.model_name(),
            spec.grid,
            fs.slot().version(),
            fs.slot().engine().name(),
            if default.as_deref() == Some(name.as_str()) {
                " default"
            } else {
                ""
            }
        ));
    }
    out
}

fn model_info(shared: &Shared, slot: Option<&str>, with_slot_line: bool) -> Response {
    let fs = match shared.fleet.resolve(slot) {
        Ok(fs) => fs,
        Err(m) => return Response::text(404, m + "\n"),
    };
    let spec = fs.slot().spec();
    let mut body = String::new();
    if with_slot_line {
        body.push_str(&format!("slot {}\n", fs.name()));
    }
    body.push_str(&format!(
        "model {}\ngrid {}\nbase_channels {}\nversion {}\nengine {}\n",
        spec.arch.model_name(),
        spec.grid,
        spec.base_channels,
        fs.slot().version(),
        fs.slot().engine().name()
    ));
    Response::text(200, body)
}

/// `POST /admin/slots` command interpreter. Whitespace-token commands:
/// `add <name> <path> [queue=N] [deadline_ms=N]`, `remove <name>`,
/// `reload <name> <path>`.
fn admin_slots(shared: &Shared, req: &Request) -> Response {
    const USAGE: &str = "body must be one of:\n  add <name> <checkpoint> [queue=N] [deadline_ms=N]\n  remove <name>\n  reload <name> <checkpoint>\n";
    let body = String::from_utf8_lossy(&req.body).into_owned();
    let tokens: Vec<&str> = body.split_whitespace().collect();
    match tokens.as_slice() {
        ["add", name, path, opts @ ..] => {
            let mut limits = SlotLimits::default();
            for opt in opts {
                if let Some(v) = opt.strip_prefix("queue=") {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => limits.queue_bound = Some(n),
                        _ => return Response::text(400, format!("bad queue bound {v:?}\n")),
                    }
                } else if let Some(v) = opt.strip_prefix("deadline_ms=") {
                    match v.parse::<u64>() {
                        Ok(ms) => limits.default_deadline = Some(Duration::from_millis(ms)),
                        Err(_) => return Response::text(400, format!("bad deadline {v:?}\n")),
                    }
                } else {
                    return Response::text(400, format!("unknown option {opt:?}\n{USAGE}"));
                }
            }
            match shared
                .fleet
                .add_slot(name, path, LoadOptions::default(), limits)
            {
                Ok(fs) => {
                    let spec = fs.slot().spec();
                    Response::text(
                        200,
                        format!(
                            "added slot {name} serving {} (grid {})\n",
                            spec.arch.model_name(),
                            spec.grid
                        ),
                    )
                }
                Err(m) => Response::text(409, m + "\n"),
            }
        }
        ["remove", name] => match shared.fleet.remove_slot(name) {
            Ok(()) => Response::text(200, format!("removed slot {name}\n")),
            Err(m) if is_unknown_slot(&m) => Response::text(404, m + "\n"),
            Err(m) => Response::text(409, m + "\n"),
        },
        ["reload", name, path] => {
            match shared
                .fleet
                .reload_slot(Some(name), path, LoadOptions::default())
            {
                Ok((slot, version, spec)) => Response::text(
                    200,
                    format!(
                        "reloaded slot {slot} with {} (grid {}) as version {version}\n",
                        spec.arch.model_name(),
                        spec.grid
                    ),
                ),
                Err(m) if is_unknown_slot(&m) => Response::text(404, m + "\n"),
                Err(m) => Response::text(409, m + "\n"),
            }
        }
        _ => Response::text(400, USAGE),
    }
}

fn predict_features(shared: &Shared, req: &Request, slot: Option<&str>) -> Response {
    let fs = match shared.fleet.resolve(slot) {
        Ok(fs) => fs,
        Err(m) => return Response::text(404, m + "\n"),
    };
    let response = match protocol::decode_features(&req.body) {
        Ok(features) => predict_on(shared, req, &fs, features),
        Err(m) => Response::text(400, m + "\n"),
    };
    shared
        .metrics
        .record_slot_request(fs.name(), response.status);
    response
}

fn predict_design(shared: &Shared, req: &Request, slot: Option<&str>) -> Response {
    let fs = match shared.fleet.resolve(slot) {
        Ok(fs) => fs,
        Err(m) => return Response::text(404, m + "\n"),
    };
    let grid = fs.slot().spec().grid;
    let response = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not utf-8 text".to_owned())
        .and_then(|text| protocol::featurize_design_request(text, grid))
    {
        Ok(features) => predict_on(shared, req, &fs, features),
        Err(m) => Response::text(400, m + "\n"),
    };
    shared
        .metrics
        .record_slot_request(fs.name(), response.status);
    response
}

fn predict_on(shared: &Shared, req: &Request, fs: &Arc<FleetSlot>, features: Tensor) -> Response {
    let grid = fs.slot().spec().grid;
    let shape = features.shape().to_vec();
    if shape != [protocol::NUM_WIRE_FEATURES, grid, grid] {
        return Response::text(
            400,
            format!(
                "feature shape {shape:?} does not match served model \
                 [{}, {grid}, {grid}]\n",
                protocol::NUM_WIRE_FEATURES
            ),
        );
    }
    // Deadline class: request header beats the slot's configured default,
    // which beats the server-wide default.
    let deadline_ms = req
        .header("x-mfaplace-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .or_else(|| fs.default_deadline())
        .unwrap_or(shared.cfg.default_deadline);
    let deadline = Instant::now() + deadline_ms;
    let rx = match fs.batcher().submit(features, deadline) {
        Ok(rx) => rx,
        Err(SubmitError::QueueFull) => {
            return Response::text(429, "queue full, retry later\n");
        }
        Err(SubmitError::Draining) => {
            return Response::text(503, "server is draining\n");
        }
    };
    match rx.recv() {
        Ok(Ok(levels)) => Response::bytes(200, protocol::encode_levels(&levels)),
        Ok(Err(JobError::DeadlineExceeded)) => Response::text(504, "deadline exceeded\n"),
        Ok(Err(JobError::ModelError(m))) => Response::text(500, m + "\n"),
        Err(_) => Response::text(500, "worker exited before answering\n"),
    }
}
