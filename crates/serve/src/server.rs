//! The TCP front end: accept loop, per-connection request handling, and
//! the graceful-shutdown choreography.
//!
//! One thread accepts connections and spawns a handler thread per
//! connection (requests are small and short-lived; the bounded batcher
//! queue — not the connection count — is the real concurrency limiter).
//! A dedicated worker thread owns the model and runs the micro-batch
//! loop. Shutdown drains in order: stop accepting, finish in-flight
//! connections, drain the batcher queue, then join the worker.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mfaplace_core::loader::LoadOptions;
use mfaplace_core::predictor::Engine;
use mfaplace_tensor::Tensor;

use crate::batcher::{BatchConfig, Batcher, JobError, ModelSlot, SubmitError};
use crate::http::{HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::protocol;

/// Server-level knobs (batching knobs live in [`BatchConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:8953` (port `0` picks one).
    pub addr: String,
    /// Batching and queueing configuration.
    pub batch: BatchConfig,
    /// Hard cap on request bodies, bytes.
    pub max_body: usize,
    /// Default per-request deadline when the client sends no
    /// `x-mfaplace-deadline-ms` header.
    pub default_deadline: Duration,
    /// Socket read timeout: a client that stalls mid-request is dropped
    /// after this long.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8953".into(),
            batch: BatchConfig::default().with_env_overrides(),
            max_body: 32 << 20,
            default_deadline: Duration::from_secs(30),
            read_timeout: Duration::from_secs(10),
        }
    }
}

struct Shared {
    metrics: Arc<Metrics>,
    slot: ModelSlot,
    batcher: Batcher,
    stop: AtomicBool,
    cfg: ServeConfig,
    addr: SocketAddr,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] and/or [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    main: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// Requests a graceful shutdown: stop accepting, finish in-flight
    /// requests, drain the queue. Returns immediately; use
    /// [`ServerHandle::join`] to wait for completion.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Requests shutdown (idempotent) and blocks until the server has
    /// fully drained and exited.
    pub fn join(mut self) {
        trigger_shutdown(&self.shared);
        if let Some(main) = self.main.take() {
            let _ = main.join();
        }
    }

    /// Blocks until the server exits on its own — i.e. until something
    /// (typically `POST /admin/shutdown`) triggers the drain. This is what
    /// the CLI foreground mode uses.
    pub fn wait(mut self) {
        if let Some(main) = self.main.take() {
            let _ = main.join();
        }
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
}

/// Binds `cfg.addr` and starts serving `slot` on background threads.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(
    slot: ModelSlot,
    metrics: Arc<Metrics>,
    cfg: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let batcher = Batcher::new(cfg.batch, metrics.clone());
    let shared = Arc::new(Shared {
        metrics,
        slot,
        batcher,
        stop: AtomicBool::new(false),
        cfg,
        addr,
    });
    let main = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("mfaplace-serve-accept".into())
            .spawn(move || accept_loop(&shared, &listener))?
    };
    Ok(ServerHandle {
        shared,
        main: Some(main),
    })
}

fn bind(addr: &str) -> std::io::Result<TcpListener> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    TcpListener::bind(&addrs[..])
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let worker = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("mfaplace-serve-batcher".into())
            .spawn(move || shared.batcher.run_worker(&shared.slot))
            .expect("spawn batch worker")
    };

    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        conns.retain(|h| !h.is_finished());
        let shared = shared.clone();
        if let Ok(handle) = std::thread::Builder::new()
            .name("mfaplace-serve-conn".into())
            .spawn(move || handle_connection(&shared, stream))
        {
            conns.push(handle);
        }
    }

    // Graceful drain: in-flight connections first (they may still submit
    // jobs), then the queue, then the worker.
    for handle in conns {
        let _ = handle.join();
    }
    shared.batcher.shutdown();
    let _ = worker.join();
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let (endpoint, response) = match Request::read_from(&mut reader, shared.cfg.max_body) {
        Ok(req) => {
            let started = Instant::now();
            let endpoint = req.path.clone();
            let response = route(shared, &req);
            shared.metrics.record_latency(started.elapsed());
            (endpoint, response)
        }
        Err(HttpError::BadRequest(m)) => ("<parse>".to_owned(), Response::text(400, m + "\n")),
        Err(HttpError::TooLarge(m)) => ("<parse>".to_owned(), Response::text(413, m + "\n")),
        Err(HttpError::Io(_)) => return,
    };
    shared.metrics.record_request(&endpoint, response.status);
    let _ = response.write_to(&mut writer);
}

fn route(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => Response::text(200, shared.metrics.render()),
        ("GET", "/model") => {
            let spec = shared.slot.spec();
            Response::text(
                200,
                format!(
                    "model {}\ngrid {}\nbase_channels {}\nversion {}\nengine {}\n",
                    spec.arch.model_name(),
                    spec.grid,
                    spec.base_channels,
                    shared.slot.version(),
                    shared.slot.engine().name()
                ),
            )
        }
        ("POST", "/predict") => match protocol::decode_features(&req.body) {
            Ok(features) => predict(shared, req, features),
            Err(m) => Response::text(400, m + "\n"),
        },
        ("POST", "/predict/design") => {
            let grid = shared.slot.spec().grid;
            match std::str::from_utf8(&req.body)
                .map_err(|_| "body is not utf-8 text".to_owned())
                .and_then(|text| protocol::featurize_design_request(text, grid))
            {
                Ok(features) => predict(shared, req, features),
                Err(m) => Response::text(400, m + "\n"),
            }
        }
        ("POST", "/admin/reload") => {
            let path = String::from_utf8_lossy(&req.body).trim().to_owned();
            if path.is_empty() {
                return Response::text(400, "body must be a checkpoint path\n");
            }
            match shared.slot.reload(&path, LoadOptions::default()) {
                Ok((version, spec)) => Response::text(
                    200,
                    format!(
                        "reloaded {} (grid {}) as version {version}\n",
                        spec.arch.model_name(),
                        spec.grid
                    ),
                ),
                Err(m) => Response::text(409, m + "\n"),
            }
        }
        ("POST", "/admin/engine") => {
            let name = String::from_utf8_lossy(&req.body).trim().to_owned();
            match Engine::parse(&name) {
                Some(engine) => {
                    shared.slot.set_engine(engine);
                    Response::text(200, format!("engine {}\n", engine.name()))
                }
                None => Response::text(400, "body must be \"tape\" or \"plan\"\n"),
            }
        }
        ("POST", "/admin/shutdown") => {
            shared.stop.store(true, Ordering::SeqCst);
            // The throwaway connection unblocking accept comes from a
            // separate thread so this handler can still write its reply.
            let addr = shared.addr;
            std::thread::spawn(move || {
                let _ = TcpStream::connect(addr);
            });
            Response::text(200, "draining\n")
        }
        (
            _,
            "/healthz" | "/metrics" | "/model" | "/predict" | "/predict/design" | "/admin/reload"
            | "/admin/engine" | "/admin/shutdown",
        ) => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "no such endpoint\n"),
    }
}

fn predict(shared: &Shared, req: &Request, features: Tensor) -> Response {
    let grid = shared.slot.spec().grid;
    let shape = features.shape().to_vec();
    if shape != [protocol::NUM_WIRE_FEATURES, grid, grid] {
        return Response::text(
            400,
            format!(
                "feature shape {shape:?} does not match served model \
                 [{}, {grid}, {grid}]\n",
                protocol::NUM_WIRE_FEATURES
            ),
        );
    }
    let deadline_ms = req
        .header("x-mfaplace-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(shared.cfg.default_deadline, Duration::from_millis);
    let deadline = Instant::now() + deadline_ms;
    let rx = match shared.batcher.submit(features, deadline) {
        Ok(rx) => rx,
        Err(SubmitError::QueueFull) => {
            return Response::text(429, "queue full, retry later\n");
        }
        Err(SubmitError::Draining) => {
            return Response::text(503, "server is draining\n");
        }
    };
    match rx.recv() {
        Ok(Ok(levels)) => Response::bytes(200, protocol::encode_levels(&levels)),
        Ok(Err(JobError::DeadlineExceeded)) => Response::text(504, "deadline exceeded\n"),
        Ok(Err(JobError::ModelError(m))) => Response::text(500, m + "\n"),
        Err(_) => Response::text(500, "worker exited before answering\n"),
    }
}
