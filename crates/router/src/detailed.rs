//! Detailed-router iteration model (`S_DR`).
//!
//! The contest's `S_DR` is the number of iterations the Vivado detailed
//! router needs; more residual congestion after placement means more rip-up
//! iterations. We model the detailed router as a geometric overflow-
//! resolution process: each iteration resolves a fixed fraction of the
//! remaining normalized overflow, on top of a few baseline iterations that
//! even congestion-free designs need. The paper's Table II reports `S_DR`
//! between 6 and 15 across the suite; this model lands in the same range.

use crate::congestion::CongestionAnalysis;
use crate::global::RoutingOutcome;

/// Fraction of residual overflow resolved per detailed-route iteration.
const RESOLUTION_RATE: f32 = 0.50;
/// Iterations any design needs (initial route, timing cleanup...).
const BASE_ITERATIONS: u32 = 5;
/// Hard cap mirroring router give-up.
const MAX_ITERATIONS: u32 = 24;

/// Simulates the detailed router, returning its iteration count.
///
/// The initial workload combines the normalized global-routing overflow and
/// the peak congestion level (a level-5 hotspot takes longer to legalize
/// than the same overflow spread thin).
pub fn detailed_route_iterations(analysis: &CongestionAnalysis, outcome: &RoutingOutcome) -> u32 {
    let tiles = (analysis.width() * analysis.height()).max(1) as f32;
    let mut workload = 1.5 * outcome.total_overflow / tiles
        + 0.12 * f32::from(analysis.max_level().saturating_sub(1));
    let mut iterations = BASE_ITERATIONS;
    while workload > 0.05 && iterations < MAX_ITERATIONS {
        workload *= 1.0 - RESOLUTION_RATE;
        iterations += 1;
    }
    iterations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::GlobalRouter;
    use crate::RouterConfig;
    use mfaplace_fpga::design::DesignPreset;

    fn analyse(short_cap: f32) -> (CongestionAnalysis, RoutingOutcome) {
        let d = DesignPreset::design_180()
            .with_scale(256, 32, 16)
            .generate(2);
        let p = d.random_placement(3);
        let cfg = RouterConfig {
            grid_w: 32,
            grid_h: 32,
            short_cap,
            global_cap: short_cap / 2.0,
            ..RouterConfig::default()
        };
        let out = GlobalRouter::new(cfg.clone()).route(&d, &p);
        (CongestionAnalysis::from_usage(&out.usage, &cfg), out)
    }

    #[test]
    fn iterations_within_observed_range() {
        let (a, o) = analyse(14.0);
        let it = detailed_route_iterations(&a, &o);
        assert!((BASE_ITERATIONS..=MAX_ITERATIONS).contains(&it));
    }

    #[test]
    fn scarcer_capacity_needs_more_iterations() {
        let (a_rich, o_rich) = analyse(30.0);
        let (a_poor, o_poor) = analyse(3.0);
        let rich = detailed_route_iterations(&a_rich, &o_rich);
        let poor = detailed_route_iterations(&a_poor, &o_poor);
        assert!(poor >= rich, "poor {poor} < rich {rich}");
        assert!(poor > BASE_ITERATIONS);
    }
}
