//! Capacity-aware global routing on the interconnect tile grid.
//!
//! Nets are decomposed into two-pin connections by a star model (every pin
//! routes to the net's median tile). Each connection is routed with the
//! cheaper of four candidate patterns (two L-shapes and two Z-shapes) under
//! a congestion cost, with optional rip-up-and-reroute passes that re-route
//! the connections crossing overflowed tiles. Horizontal/vertical segments
//! consume per-direction *short* or *global* wire capacity depending on the
//! connection's span, mirroring the two congestion classes that Vivado's
//! initial-route report distinguishes.

use mfaplace_fpga::design::Design;
use mfaplace_fpga::placement::Placement;
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::SliceRandom;
use mfaplace_rt::rng::StdRng;

use crate::congestion::{Direction, WireClass};
use crate::RouterConfig;

/// Per-direction usage maps for one wire class, on a `w x h` tile grid.
#[derive(Debug, Clone)]
pub struct UsageMaps {
    w: usize,
    h: usize,
    /// `usage[dir][y * w + x]`, directions indexed per [`Direction`].
    short: [Vec<f32>; 4],
    global: [Vec<f32>; 4],
}

impl UsageMaps {
    pub(crate) fn new(w: usize, h: usize) -> Self {
        UsageMaps {
            w,
            h,
            short: std::array::from_fn(|_| vec![0.0; w * h]),
            global: std::array::from_fn(|_| vec![0.0; w * h]),
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Usage of a tile in a direction for a wire class.
    pub fn usage(&self, class: WireClass, dir: Direction, x: usize, y: usize) -> f32 {
        let m = match class {
            WireClass::Short => &self.short[dir as usize],
            WireClass::Global => &self.global[dir as usize],
        };
        m[y * self.w + x]
    }

    pub(crate) fn add(&mut self, class: WireClass, dir: Direction, x: usize, y: usize, v: f32) {
        let m = match class {
            WireClass::Short => &mut self.short[dir as usize],
            WireClass::Global => &mut self.global[dir as usize],
        };
        m[y * self.w + x] += v;
    }

    /// Total overflow (usage above capacity), summed over tiles, directions
    /// and wire classes.
    pub fn total_overflow(&self, short_cap: f32, global_cap: f32) -> f32 {
        let mut total = 0.0;
        for d in 0..4 {
            for &u in &self.short[d] {
                total += (u - short_cap).max(0.0);
            }
            for &u in &self.global[d] {
                total += (u - global_cap).max(0.0);
            }
        }
        total
    }
}

/// One routed two-pin connection (for rip-up bookkeeping).
#[derive(Debug, Clone, Copy)]
struct Connection {
    from: (usize, usize),
    to: (usize, usize),
    class: WireClass,
    /// Chosen pattern (index into the candidate list).
    pattern: u8,
}

/// Result of global routing.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// Final usage maps.
    pub usage: UsageMaps,
    /// Total routed wirelength in tile units.
    pub total_wirelength: f64,
    /// Total capacity overflow after the final pass.
    pub total_overflow: f32,
    /// Number of routed two-pin connections.
    pub connections: usize,
}

/// The global router.
#[derive(Debug, Clone)]
pub struct GlobalRouter {
    config: RouterConfig,
}

impl GlobalRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: RouterConfig) -> Self {
        GlobalRouter { config }
    }

    /// The router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Routes all nets of `design` under `placement`, dispatching on the
    /// configured [`crate::RoutingAlgorithm`].
    pub fn route(&self, design: &Design, placement: &Placement) -> RoutingOutcome {
        let _t = mfaplace_rt::timer::ScopeTimer::new("router/route");
        if self.config.algorithm == crate::RoutingAlgorithm::Maze {
            return crate::maze::route_maze(design, placement, &self.config);
        }
        let cfg = &self.config;
        let sx = cfg.grid_w as f32 / design.arch.width();
        let sy = cfg.grid_h as f32 / design.arch.height();
        let tile = |x: f32, y: f32| -> (usize, usize) {
            (
                ((x * sx) as usize).min(cfg.grid_w - 1),
                ((y * sy) as usize).min(cfg.grid_h - 1),
            )
        };

        // Build two-pin connections from star decomposition.
        let mut conns: Vec<Connection> = Vec::new();
        for (_, net) in design.netlist.nets() {
            let mut txs: Vec<usize> = Vec::with_capacity(net.degree());
            let mut tys: Vec<usize> = Vec::with_capacity(net.degree());
            for &p in &net.pins {
                let (x, y) = placement.pos(p.0 as usize);
                let (tx, ty) = tile(x, y);
                txs.push(tx);
                tys.push(ty);
            }
            let mut sx_sorted = txs.clone();
            let mut sy_sorted = tys.clone();
            sx_sorted.sort_unstable();
            sy_sorted.sort_unstable();
            let cx = sx_sorted[sx_sorted.len() / 2];
            let cy = sy_sorted[sy_sorted.len() / 2];
            for (&tx, &ty) in txs.iter().zip(&tys) {
                if tx == cx && ty == cy {
                    continue;
                }
                let span = tx.abs_diff(cx) + ty.abs_diff(cy);
                let class = if span >= cfg.global_threshold {
                    WireClass::Global
                } else {
                    WireClass::Short
                };
                conns.push(Connection {
                    from: (tx, ty),
                    to: (cx, cy),
                    class,
                    pattern: 0,
                });
            }
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        conns.shuffle(&mut rng);

        let mut usage = UsageMaps::new(cfg.grid_w, cfg.grid_h);
        let mut total_wl = 0.0f64;
        for c in &mut conns {
            let pattern = best_pattern(&usage, c, cfg);
            c.pattern = pattern;
            total_wl += apply_pattern(&mut usage, c, 1.0) as f64;
        }

        // Rip-up and re-route the connections that cross overflowed tiles.
        for _ in 0..cfg.rrr_passes {
            for c in conns.iter_mut() {
                let cost = pattern_cost(&usage, c, c.pattern, cfg, true);
                if cost <= 0.0 {
                    continue; // not crossing congestion
                }
                apply_pattern(&mut usage, c, -1.0);
                c.pattern = best_pattern(&usage, c, cfg);
                apply_pattern(&mut usage, c, 1.0);
            }
        }

        let total_overflow = usage.total_overflow(cfg.short_cap, cfg.global_cap);
        RoutingOutcome {
            usage,
            total_wirelength: total_wl,
            total_overflow,
            connections: conns.len(),
        }
    }
}

/// Candidate patterns: 0 = HV L-shape, 1 = VH L-shape, 2 = Z with horizontal
/// split at the midpoint, 3 = Z with vertical split at the midpoint.
const NUM_PATTERNS: u8 = 4;

fn best_pattern(usage: &UsageMaps, c: &Connection, cfg: &RouterConfig) -> u8 {
    let mut best = 0u8;
    let mut best_cost = f32::INFINITY;
    for p in 0..NUM_PATTERNS {
        let cost = pattern_cost(usage, c, p, cfg, false);
        if cost < best_cost {
            best_cost = cost;
            best = p;
        }
    }
    best
}

/// Walks the pattern's segments, calling `f(class, dir, x, y)` per tile
/// crossing. Returns the number of crossings (wirelength).
fn walk_pattern(
    c: &Connection,
    pattern: u8,
    mut f: impl FnMut(WireClass, Direction, usize, usize),
) -> usize {
    fn hseg(
        class: WireClass,
        y: usize,
        xa: usize,
        xb: usize,
        count: &mut usize,
        f: &mut dyn FnMut(WireClass, Direction, usize, usize),
    ) {
        if xa == xb {
            return;
        }
        let (dir, lo, hi) = if xa < xb {
            (Direction::East, xa, xb)
        } else {
            (Direction::West, xb, xa)
        };
        for x in lo..hi {
            f(class, dir, x, y);
            *count += 1;
        }
    }
    fn vseg(
        class: WireClass,
        x: usize,
        ya: usize,
        yb: usize,
        count: &mut usize,
        f: &mut dyn FnMut(WireClass, Direction, usize, usize),
    ) {
        if ya == yb {
            return;
        }
        let (dir, lo, hi) = if ya < yb {
            (Direction::North, ya, yb)
        } else {
            (Direction::South, yb, ya)
        };
        for y in lo..hi {
            f(class, dir, x, y);
            *count += 1;
        }
    }

    let (x0, y0) = c.from;
    let (x1, y1) = c.to;
    let mut count = 0usize;
    let cl = c.class;
    match pattern {
        0 => {
            // horizontal first, then vertical
            hseg(cl, y0, x0, x1, &mut count, &mut f);
            vseg(cl, x1, y0, y1, &mut count, &mut f);
        }
        1 => {
            vseg(cl, x0, y0, y1, &mut count, &mut f);
            hseg(cl, y1, x0, x1, &mut count, &mut f);
        }
        2 => {
            let xm = x0.midpoint(x1);
            hseg(cl, y0, x0, xm, &mut count, &mut f);
            vseg(cl, xm, y0, y1, &mut count, &mut f);
            hseg(cl, y1, xm, x1, &mut count, &mut f);
        }
        _ => {
            let ym = y0.midpoint(y1);
            vseg(cl, x0, y0, ym, &mut count, &mut f);
            hseg(cl, ym, x0, x1, &mut count, &mut f);
            vseg(cl, x1, ym, y1, &mut count, &mut f);
        }
    }
    count
}

/// Congestion cost of routing `c` with `pattern`. With `overflow_only`,
/// returns only the overflow component (used to decide rip-up).
fn pattern_cost(
    usage: &UsageMaps,
    c: &Connection,
    pattern: u8,
    cfg: &RouterConfig,
    overflow_only: bool,
) -> f32 {
    let cap = match c.class {
        WireClass::Short => cfg.short_cap,
        WireClass::Global => cfg.global_cap,
    };
    let mut cost = 0.0f32;
    let wl = walk_pattern(c, pattern, |class, dir, x, y| {
        let u = usage.usage(class, dir, x, y);
        let over = (u + 1.0 - cap).max(0.0) / cap;
        cost += over * over * 4.0;
        if !overflow_only {
            // mild pressure term keeps usage spread below capacity
            cost += (u / cap).powi(2) * 0.25;
        }
    });
    if overflow_only {
        cost
    } else {
        cost + wl as f32 * 0.05
    }
}

/// Applies (or removes, with `sign = -1`) a pattern's usage. Returns its
/// wirelength.
fn apply_pattern(usage: &mut UsageMaps, c: &Connection, sign: f32) -> usize {
    walk_pattern(c, c.pattern, |class, dir, x, y| {
        usage.add(class, dir, x, y, sign);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;

    fn route_small(seed: u64) -> RoutingOutcome {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(seed);
        GlobalRouter::new(RouterConfig {
            grid_w: 32,
            grid_h: 32,
            ..RouterConfig::default()
        })
        .route(&d, &p)
    }

    #[test]
    fn routes_produce_usage_and_wirelength() {
        let out = route_small(1);
        assert!(out.total_wirelength > 0.0);
        assert!(out.connections > 0);
    }

    #[test]
    fn routing_is_deterministic() {
        let a = route_small(1);
        let b = route_small(1);
        assert_eq!(a.total_wirelength, b.total_wirelength);
        assert_eq!(a.total_overflow, b.total_overflow);
    }

    #[test]
    fn pattern_walk_lengths_match_manhattan() {
        let c = Connection {
            from: (2, 3),
            to: (7, 9),
            class: WireClass::Short,
            pattern: 0,
        };
        for p in 0..NUM_PATTERNS {
            let mut n = 0usize;
            let counted = walk_pattern(&c, p, |_, _, _, _| n += 1);
            assert_eq!(counted, n);
            assert_eq!(n, 5 + 6, "pattern {p} should be monotone");
        }
    }

    #[test]
    fn direction_accounting_is_symmetric() {
        // Route east then route the reverse west; East and West maps should
        // mirror each other.
        let mut usage = UsageMaps::new(10, 10);
        let fwd = Connection {
            from: (1, 5),
            to: (8, 5),
            class: WireClass::Short,
            pattern: 0,
        };
        let rev = Connection {
            from: (8, 5),
            to: (1, 5),
            class: WireClass::Short,
            pattern: 0,
        };
        apply_pattern(&mut usage, &fwd, 1.0);
        apply_pattern(&mut usage, &rev, 1.0);
        let east: f32 = (0..10)
            .map(|x| usage.usage(WireClass::Short, Direction::East, x, 5))
            .sum();
        let west: f32 = (0..10)
            .map(|x| usage.usage(WireClass::Short, Direction::West, x, 5))
            .sum();
        assert_eq!(east, 7.0);
        assert_eq!(west, 7.0);
    }

    #[test]
    fn rip_up_reduces_or_preserves_overflow() {
        let d = DesignPreset::design_180()
            .with_scale(256, 32, 16)
            .generate(2);
        let p = d.random_placement(3);
        let base_cfg = RouterConfig {
            grid_w: 32,
            grid_h: 32,
            short_cap: 4.0,
            global_cap: 2.0,
            rrr_passes: 0,
            ..RouterConfig::default()
        };
        let no_rrr = GlobalRouter::new(base_cfg.clone()).route(&d, &p);
        let with_rrr = GlobalRouter::new(RouterConfig {
            rrr_passes: 3,
            ..base_cfg
        })
        .route(&d, &p);
        assert!(
            with_rrr.total_overflow <= no_rrr.total_overflow,
            "rrr {} > base {}",
            with_rrr.total_overflow,
            no_rrr.total_overflow
        );
    }

    #[test]
    fn clustered_placement_overflows_more_than_spread() {
        let d = DesignPreset::design_116()
            .with_scale(256, 64, 32)
            .generate(4);
        let spread = d.random_placement(5);
        let mut clustered = spread.clone();
        for (id, inst) in d.netlist.instances() {
            if inst.movable {
                let (x, y) = clustered.pos(id.0 as usize);
                // squeeze into the central 10% of the fabric
                clustered.set_pos(
                    id.0 as usize,
                    d.arch.width() * 0.45 + x * 0.1,
                    d.arch.height() * 0.45 + y * 0.1,
                );
            }
        }
        let router = GlobalRouter::new(RouterConfig {
            grid_w: 32,
            grid_h: 32,
            ..RouterConfig::default()
        });
        let o_spread = router.route(&d, &spread);
        let o_clustered = router.route(&d, &clustered);
        // A random spread placement routes chip-wide nets, so its *total*
        // overflow is wirelength-dominated; the signature of clustering is
        // higher congestion density (overflow per routed tile).
        let density = |o: &RoutingOutcome| f64::from(o.total_overflow) / o.total_wirelength;
        assert!(
            density(&o_clustered) > density(&o_spread),
            "clustered density {} <= spread density {}",
            density(&o_clustered),
            density(&o_spread)
        );
    }
}
