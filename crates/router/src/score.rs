//! MLCAD 2023 routability scoring (Eqs. 1–3 of the paper).

/// Raw inputs to the score formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreInputs {
    /// Short-wire congestion level per direction (E, S, W, N).
    pub l_short: [u8; 4],
    /// Global-wire congestion level per direction (E, S, W, N).
    pub l_global: [u8; 4],
    /// Detailed-router iterations.
    pub s_dr: u32,
    /// Macro-placement runtime in minutes.
    pub t_macro_min: f64,
    /// Vivado cell placement + routing runtime in hours.
    pub t_pr_hours: f64,
}

/// The computed routability scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutabilityScore {
    inputs: ScoreInputs,
}

impl RoutabilityScore {
    /// Computes all scores from the raw inputs.
    pub fn new(inputs: ScoreInputs) -> Self {
        RoutabilityScore { inputs }
    }

    /// The raw inputs.
    pub fn inputs(&self) -> &ScoreInputs {
        &self.inputs
    }

    /// Initial routing score, Eq. (1):
    /// `S_IR = 1 + sum_d [max(0, L_short_d - 3)^2 + max(0, L_global_d - 3)^2]`.
    ///
    /// Only congestion levels 4 and above are penalized.
    pub fn s_ir(&self) -> f64 {
        let pen = |l: u8| -> f64 {
            let over = f64::from(l).max(0.0) - 3.0;
            if over > 0.0 {
                over * over
            } else {
                0.0
            }
        };
        1.0 + self
            .inputs
            .l_short
            .iter()
            .zip(&self.inputs.l_global)
            .map(|(&ls, &lg)| pen(ls) + pen(lg))
            .sum::<f64>()
    }

    /// Detailed routing score (iteration count).
    pub fn s_dr(&self) -> f64 {
        f64::from(self.inputs.s_dr)
    }

    /// Overall routability score, Eq. (2): `S_R = S_IR * S_DR`.
    pub fn s_r(&self) -> f64 {
        self.s_ir() * self.s_dr()
    }

    /// Final contest score, Eq. (3):
    /// `S_score = [1 + max(0, T_macro - 10)] * S_R * T_P&R`.
    pub fn s_score(&self) -> f64 {
        (1.0 + (self.inputs.t_macro_min - 10.0).max(0.0)) * self.s_r() * self.inputs.t_pr_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScoreInputs {
        ScoreInputs {
            l_short: [0, 0, 0, 0],
            l_global: [0, 0, 0, 0],
            s_dr: 8,
            t_macro_min: 5.0,
            t_pr_hours: 0.5,
        }
    }

    #[test]
    fn congestion_free_s_ir_is_one() {
        let s = RoutabilityScore::new(base());
        assert_eq!(s.s_ir(), 1.0);
        assert_eq!(s.s_r(), 8.0);
        assert_eq!(s.s_score(), 4.0);
    }

    #[test]
    fn levels_up_to_three_are_free() {
        let mut i = base();
        i.l_short = [3, 3, 3, 3];
        i.l_global = [3, 3, 3, 3];
        assert_eq!(RoutabilityScore::new(i).s_ir(), 1.0);
    }

    #[test]
    fn level_five_penalty_is_quadratic() {
        let mut i = base();
        i.l_short = [5, 0, 0, 0];
        // max(0, 5-3)^2 = 4
        assert_eq!(RoutabilityScore::new(i).s_ir(), 5.0);
        i.l_global = [0, 6, 0, 0];
        // + max(0, 6-3)^2 = 9
        assert_eq!(RoutabilityScore::new(i).s_ir(), 14.0);
    }

    #[test]
    fn slow_macro_placement_multiplies_score() {
        let mut i = base();
        i.t_macro_min = 12.0;
        let s = RoutabilityScore::new(i);
        // 1 + (12-10) = 3x multiplier
        assert_eq!(s.s_score(), 3.0 * s.s_r() * 0.5);
    }

    #[test]
    fn fast_macro_placement_has_no_bonus() {
        let mut a = base();
        a.t_macro_min = 1.0;
        let mut b = base();
        b.t_macro_min = 9.9;
        assert_eq!(
            RoutabilityScore::new(a).s_score(),
            RoutabilityScore::new(b).s_score()
        );
    }

    #[test]
    fn matches_paper_example_magnitudes() {
        // Design_116 / UTDA row of Table II: S_IR 9, S_DR 11 -> S_R 99.
        let i = ScoreInputs {
            l_short: [5, 4, 4, 3],  // penalties 4 + 1 + 1 = 6
            l_global: [4, 4, 3, 3], // penalties 1 + 1 = 2
            s_dr: 11,
            t_macro_min: 4.0,
            t_pr_hours: 0.56,
        };
        let s = RoutabilityScore::new(i);
        assert_eq!(s.s_ir(), 9.0);
        assert_eq!(s.s_r(), 99.0);
        assert!((s.s_score() - 55.44).abs() < 1e-9);
    }
}
