//! Routing substrate: congestion simulation and contest scoring.
//!
//! The paper labels its training data with the *interconnect congestion
//! level* reported by the Vivado initial router and scores placements with
//! the MLCAD 2023 formulas. Vivado is proprietary, so this crate provides a
//! behavioural equivalent:
//!
//! - [`global`] — a capacity-aware global router on the interconnect tile
//!   grid (congestion-aware L-shapes from a star decomposition, plus
//!   rip-up-and-reroute passes), tracking per-direction short and global
//!   wire usage;
//! - [`congestion`] — Vivado-style congestion *levels*: level `k` means some
//!   `2^k x 2^k` window of tiles exceeds its capacity (computed with
//!   summed-area tables);
//! - [`detailed`] — a detailed-router iteration model driven by residual
//!   overflow (`S_DR`);
//! - [`score`] — Eqs. (1)-(3): `S_IR`, `S_R = S_IR * S_DR`, and the final
//!   contest score;
//! - [`labels`] — per-tile congestion-level maps used as training labels;
//! - [`maze`] — an A* maze router with congestion-aware edge costs, the
//!   alternative [`RoutingAlgorithm`].
//!
//! # Example
//!
//! ```
//! use mfaplace_fpga::design::DesignPreset;
//! use mfaplace_router::{global::GlobalRouter, RouterConfig};
//!
//! let design = DesignPreset::design_116().with_scale(256, 64, 32).generate(1);
//! let placement = design.random_placement(7);
//! let router = GlobalRouter::new(RouterConfig::default());
//! let outcome = router.route(&design, &placement);
//! assert!(outcome.total_wirelength > 0.0);
//! ```

pub mod congestion;
pub mod detailed;
pub mod global;
pub mod labels;
pub mod maze;
pub mod score;

pub use congestion::{CongestionAnalysis, Direction, WireClass, MAX_LEVEL};
pub use global::{GlobalRouter, RoutingOutcome};
pub use score::{RoutabilityScore, ScoreInputs};

/// Routing algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingAlgorithm {
    /// Fast L/Z pattern routing with congestion-aware pattern choice
    /// (default; used by the experiment harnesses).
    #[default]
    Patterns,
    /// A* maze routing with congestion-aware edge costs
    /// (closer to a production initial router; slower).
    Maze,
}

/// Configuration of the global router and congestion analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Interconnect tile grid width.
    pub grid_w: usize,
    /// Interconnect tile grid height.
    pub grid_h: usize,
    /// Short-wire capacity per tile per direction.
    pub short_cap: f32,
    /// Global-wire capacity per tile per direction.
    pub global_cap: f32,
    /// Connections spanning at least this many tiles use global wires.
    pub global_threshold: usize,
    /// Number of rip-up-and-reroute refinement passes.
    pub rrr_passes: usize,
    /// Window occupancy ratio above which a window counts as congested.
    pub congested_ratio: f32,
    /// Seed for the net-ordering shuffle.
    pub seed: u64,
    /// Which routing algorithm to use.
    pub algorithm: RoutingAlgorithm,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            grid_w: 64,
            grid_h: 64,
            short_cap: 14.0,
            global_cap: 6.0,
            global_threshold: 12,
            rrr_passes: 2,
            congested_ratio: 0.9,
            seed: 0xC0FFEE,
            algorithm: RoutingAlgorithm::Patterns,
        }
    }
}

impl RouterConfig {
    /// Calibrates per-tile wire capacities against a reference placement of
    /// a design, so utilization distributions are meaningful at any
    /// design/grid scale (a real device's routing capacity is sized for its
    /// logic capacity; the synthetic fabric mirrors that here).
    ///
    /// Routes the reference placement once with the current capacities
    /// (capacities barely influence the demand distribution, only the
    /// pattern choice), then sets each class's capacity so the 80th
    /// percentile of per-tile directional usage sits at `target_util`
    /// (a typical value is 0.7). Floors keep degenerate designs routable.
    pub fn calibrated(
        mut self,
        design: &mfaplace_fpga::design::Design,
        reference: &mfaplace_fpga::placement::Placement,
        target_util: f32,
    ) -> RouterConfig {
        use crate::congestion::{Direction, WireClass};
        let outcome = crate::global::GlobalRouter::new(self.clone()).route(design, reference);
        let percentile = |class: WireClass| -> f32 {
            let mut usages: Vec<f32> = Vec::with_capacity(self.grid_w * self.grid_h);
            for y in 0..self.grid_h {
                for x in 0..self.grid_w {
                    let u = Direction::ALL
                        .iter()
                        .map(|&d| outcome.usage.usage(class, d, x, y))
                        .fold(0.0f32, f32::max);
                    usages.push(u);
                }
            }
            usages.sort_by(|a, b| a.partial_cmp(b).expect("finite usage"));
            usages[(usages.len() * 8 / 10).min(usages.len() - 1)]
        };
        self.short_cap = (percentile(WireClass::Short) / target_util).max(4.0);
        self.global_cap = (percentile(WireClass::Global) / target_util).max(2.0);
        self
    }
}
