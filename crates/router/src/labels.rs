//! Training-label generation: per-tile congestion-level maps.

use mfaplace_fpga::design::Design;
use mfaplace_fpga::gridmap::GridMap;
use mfaplace_fpga::placement::Placement;

use crate::congestion::CongestionAnalysis;
use crate::global::GlobalRouter;
use crate::RouterConfig;

/// A labelled congestion snapshot: the per-tile level map both as raw class
/// ids (for cross entropy) and as a [`GridMap`] (for augmentation and
/// rendering).
#[derive(Debug, Clone)]
pub struct CongestionLabels {
    /// Per-tile congestion level (class id `0..=MAX_LEVEL`), row-major.
    pub levels: Vec<u8>,
    /// Same data as a float map.
    pub map: GridMap,
    /// The full analysis (directional levels etc.).
    pub analysis: CongestionAnalysis,
    /// Total routed wirelength (effort proxy).
    pub total_wirelength: f64,
    /// Residual overflow after routing.
    pub total_overflow: f32,
}

/// Routes `design` under `placement` and derives the congestion-level label
/// map used to train the prediction models.
pub fn congestion_labels(
    design: &Design,
    placement: &Placement,
    config: &RouterConfig,
) -> CongestionLabels {
    let router = GlobalRouter::new(config.clone());
    let outcome = router.route(design, placement);
    let analysis = CongestionAnalysis::from_usage(&outcome.usage, config);
    let levels = analysis.combined_level_map();
    let map = GridMap::from_vec(
        config.grid_w,
        config.grid_h,
        levels.iter().map(|&l| f32::from(l)).collect(),
    );
    CongestionLabels {
        levels,
        map,
        analysis,
        total_wirelength: outcome.total_wirelength,
        total_overflow: outcome.total_overflow,
    }
}

/// Rotates a label level vector by `k * 90` degrees (matching
/// `FeatureStack::rot90` for dataset augmentation).
pub fn rotate_levels(levels: &[u8], w: usize, h: usize, k: usize) -> Vec<u8> {
    let map = GridMap::from_vec(w, h, levels.iter().map(|&l| f32::from(l)).collect());
    let rotated = map.rot90(k);
    rotated.data().iter().map(|&v| v as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;

    #[test]
    fn labels_have_grid_shape_and_bounded_levels() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        let cfg = RouterConfig {
            grid_w: 32,
            grid_h: 32,
            ..RouterConfig::default()
        };
        let labels = congestion_labels(&d, &p, &cfg);
        assert_eq!(labels.levels.len(), 32 * 32);
        assert!(labels.levels.iter().all(|&l| l <= crate::MAX_LEVEL));
        assert_eq!(labels.map.width(), 32);
    }

    #[test]
    fn rotation_round_trip() {
        let levels: Vec<u8> = (0..16).map(|i| (i % 8) as u8).collect();
        let r4 = rotate_levels(&levels, 4, 4, 4);
        assert_eq!(r4, levels);
        let r1 = rotate_levels(&levels, 4, 4, 1);
        assert_ne!(r1, levels);
    }

    #[test]
    fn congested_config_produces_nonzero_labels() {
        let d = DesignPreset::design_180()
            .with_scale(128, 16, 8)
            .generate(3);
        // Clustered placement on a starved grid must show congestion.
        let mut p = d.random_placement(4);
        for (id, inst) in d.netlist.instances() {
            if inst.movable {
                let (x, y) = p.pos(id.0 as usize);
                p.set_pos(
                    id.0 as usize,
                    d.arch.width() * 0.4 + x * 0.2,
                    d.arch.height() * 0.4 + y * 0.2,
                );
            }
        }
        let cfg = RouterConfig {
            grid_w: 32,
            grid_h: 32,
            short_cap: 4.0,
            global_cap: 2.0,
            ..RouterConfig::default()
        };
        let labels = congestion_labels(&d, &p, &cfg);
        assert!(
            labels.levels.iter().any(|&l| l > 0),
            "expected congestion labels"
        );
    }
}
