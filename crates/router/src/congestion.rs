//! Vivado-style interconnect congestion levels.
//!
//! Vivado's initial-route congestion report assigns each direction a
//! congestion *level* `k`, meaning some `2^k x 2^k` square of interconnect
//! tiles is congested (utilization above a threshold). Penalties in the
//! contest score apply from level 4 (16x16 regions) upward.
//!
//! [`CongestionAnalysis`] computes, per wire class and direction, a
//! per-tile level map using summed-area tables (each dyadic window size in
//! O(tiles)), the per-direction maximum levels used by Eq. (1), and the
//! combined per-tile level map the paper uses as training labels.

use crate::global::UsageMaps;
use crate::RouterConfig;

/// Routing direction, matching the four directional congestion levels of
/// Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Direction {
    /// Increasing x.
    East = 0,
    /// Decreasing y.
    South = 1,
    /// Decreasing x.
    West = 2,
    /// Increasing y.
    North = 3,
}

impl Direction {
    /// All four directions.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::North,
    ];
}

/// Wire class: short (local) vs global (long-haul) interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireClass {
    /// Local wires.
    Short,
    /// Long wires.
    Global,
}

impl WireClass {
    /// Both wire classes.
    pub const ALL: [WireClass; 2] = [WireClass::Short, WireClass::Global];
}

/// Maximum congestion level (window `2^MAX_LEVEL`); levels are reported in
/// `0..=MAX_LEVEL`.
pub const MAX_LEVEL: u8 = 7;

/// Congestion-level analysis of one routing outcome.
///
/// Two level notions coexist, mirroring how Vivado's data is consumed:
///
/// - **window levels** (`level_map`, `directional_level`): level `k` means a
///   `2^k x 2^k` region is congested — the quantity Eq. (1) penalizes;
/// - **graded per-tile levels** (`combined_level_map`): the max of the
///   window level and a quantized local utilization, giving the
///   fine-grained per-tile map the prediction model is trained on (the
///   paper's `Y in R_+^{1 x H x W}`, Fig. 1).
#[derive(Debug, Clone)]
pub struct CongestionAnalysis {
    w: usize,
    h: usize,
    /// Window-based `levels[class][dir][tile]`.
    levels: [[Vec<u8>; 4]; 2],
    /// Graded `max(window, utilization quantile)` per class/dir.
    graded: [[Vec<u8>; 4]; 2],
}

impl CongestionAnalysis {
    /// Analyses usage maps into congestion levels.
    pub fn from_usage(usage: &UsageMaps, config: &RouterConfig) -> Self {
        let (w, h) = (usage.width(), usage.height());
        let mut levels: [[Vec<u8>; 4]; 2] =
            std::array::from_fn(|_| std::array::from_fn(|_| vec![0u8; w * h]));
        let mut graded: [[Vec<u8>; 4]; 2] =
            std::array::from_fn(|_| std::array::from_fn(|_| vec![0u8; w * h]));
        for (ci, &class) in WireClass::ALL.iter().enumerate() {
            let cap = match class {
                WireClass::Short => config.short_cap,
                WireClass::Global => config.global_cap,
            };
            for &dir in &Direction::ALL {
                let util: Vec<f32> = (0..w * h)
                    .map(|i| usage.usage(class, dir, i % w, i / w) / cap)
                    .collect();
                let lm = level_map(&util, w, h, config.congested_ratio);
                graded[ci][dir as usize] = lm
                    .iter()
                    .zip(&util)
                    .map(|(&wl, &u)| wl.max(utilization_grade(u)))
                    .collect();
                levels[ci][dir as usize] = lm;
            }
        }
        CongestionAnalysis {
            w,
            h,
            levels,
            graded,
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Per-tile level map for one class and direction.
    pub fn level_map(&self, class: WireClass, dir: Direction) -> &[u8] {
        let ci = match class {
            WireClass::Short => 0,
            WireClass::Global => 1,
        };
        &self.levels[ci][dir as usize]
    }

    /// The maximum level over all tiles for one class and direction — the
    /// `L_{short,d}` / `L_{global,d}` of Eq. (1).
    pub fn directional_level(&self, class: WireClass, dir: Direction) -> u8 {
        self.level_map(class, dir)
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// The four short-wire directional levels (E, S, W, N).
    pub fn short_levels(&self) -> [u8; 4] {
        Direction::ALL.map(|d| self.directional_level(WireClass::Short, d))
    }

    /// The four global-wire directional levels (E, S, W, N).
    pub fn global_levels(&self) -> [u8; 4] {
        Direction::ALL.map(|d| self.directional_level(WireClass::Global, d))
    }

    /// Per-tile combined *graded* level: the max over classes and
    /// directions of `max(window level, utilization grade)`. This is the
    /// fine-grained congestion-level map the prediction model is trained on
    /// (`Y in R_+^{1 x H x W}` in the paper) and the map Fig. 1 renders.
    pub fn combined_level_map(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.w * self.h];
        for ci in 0..2 {
            for di in 0..4 {
                for (o, &l) in out.iter_mut().zip(&self.graded[ci][di]) {
                    *o = (*o).max(l);
                }
            }
        }
        out
    }

    /// The maximum combined level anywhere.
    pub fn max_level(&self) -> u8 {
        self.combined_level_map().iter().copied().max().unwrap_or(0)
    }
}

/// Quantizes a tile's local utilization onto the level scale: free below
/// 50% utilization, then one level per additional 25%:
/// `u = 0.5 -> 1`, `0.75 -> 2`, `1.0 -> 3`, ..., `>= 2.0 -> 7`.
pub fn utilization_grade(util: f32) -> u8 {
    if util < 0.5 {
        0
    } else {
        (((util - 0.5) / 0.25) as u8)
            .saturating_add(1)
            .min(MAX_LEVEL)
    }
}

/// Computes the per-tile congestion level of one utilization map.
///
/// Level `k` (for `k = 1..=MAX_LEVEL`, window `s = 2^k` clipped to the grid)
/// marks every tile of any `s x s` window whose *average* utilization
/// exceeds `ratio`. A single over-capacity tile yields level 1. Each tile's
/// level is the maximum `k` that marks it.
fn level_map(util: &[f32], w: usize, h: usize, ratio: f32) -> Vec<u8> {
    let mut out = vec![0u8; w * h];
    // Level 1 floor: a tile above capacity is at least level 1.
    for (o, &u) in out.iter_mut().zip(util) {
        if u > ratio {
            *o = 1;
        }
    }
    // Summed-area table, (w+1) x (h+1).
    let mut sat = vec![0.0f64; (w + 1) * (h + 1)];
    for y in 0..h {
        for x in 0..w {
            sat[(y + 1) * (w + 1) + (x + 1)] = f64::from(util[y * w + x])
                + sat[y * (w + 1) + (x + 1)]
                + sat[(y + 1) * (w + 1) + x]
                - sat[y * (w + 1) + x];
        }
    }
    let window_sum = |x0: usize, y0: usize, s: usize| -> f64 {
        let (x1, y1) = (x0 + s, y0 + s);
        sat[y1 * (w + 1) + x1] - sat[y0 * (w + 1) + x1] - sat[y1 * (w + 1) + x0]
            + sat[y0 * (w + 1) + x0]
    };
    for k in 1..=MAX_LEVEL {
        let s = 1usize << k;
        if s > w || s > h {
            break;
        }
        // Mark tiles of congested windows with a 2-D difference array.
        let mut diff = vec![0i32; (w + 1) * (h + 1)];
        let mut any = false;
        for y0 in 0..=(h - s) {
            for x0 in 0..=(w - s) {
                let avg = window_sum(x0, y0, s) / (s * s) as f64;
                if avg > f64::from(ratio) {
                    any = true;
                    diff[y0 * (w + 1) + x0] += 1;
                    diff[y0 * (w + 1) + x0 + s] -= 1;
                    diff[(y0 + s) * (w + 1) + x0] -= 1;
                    diff[(y0 + s) * (w + 1) + x0 + s] += 1;
                }
            }
        }
        if !any {
            continue;
        }
        // Integrate the difference array; positive cells are covered.
        let mut row_acc = vec![0i32; w + 1];
        for y in 0..h {
            let mut acc = 0i32;
            for x in 0..w {
                acc += diff[y * (w + 1) + x];
                row_acc[x] += acc;
                if row_acc[x] > 0 {
                    out[y * w + x] = out[y * w + x].max(k);
                }
            }
            // undo: keep row_acc as running vertical integral
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hot_tile_is_level_one() {
        let mut util = vec![0.0f32; 16 * 16];
        util[5 * 16 + 5] = 2.0;
        let lm = level_map(&util, 16, 16, 0.9);
        assert_eq!(lm[5 * 16 + 5], 1);
        assert_eq!(lm[0], 0);
    }

    #[test]
    fn hot_square_region_raises_level() {
        // A fully saturated 8x8 region must reach level 3 (window 8).
        let mut util = vec![0.0f32; 32 * 32];
        for y in 4..12 {
            for x in 4..12 {
                util[y * 32 + x] = 1.5;
            }
        }
        let lm = level_map(&util, 32, 32, 0.9);
        let max = lm.iter().copied().max().unwrap();
        assert_eq!(max, 3, "8x8 hot region should be level 3");
        assert!(lm[8 * 32 + 8] >= 3);
    }

    #[test]
    fn bigger_regions_give_higher_levels() {
        let mut small = vec![0.0f32; 64 * 64];
        let mut large = vec![0.0f32; 64 * 64];
        for y in 0..4 {
            for x in 0..4 {
                small[y * 64 + x] = 2.0;
            }
        }
        for y in 0..32 {
            for x in 0..32 {
                large[y * 64 + x] = 2.0;
            }
        }
        let ls = level_map(&small, 64, 64, 0.9);
        let ll = level_map(&large, 64, 64, 0.9);
        assert!(ll.iter().max() > ls.iter().max());
        assert_eq!(*ll.iter().max().unwrap(), 5, "32x32 region = level 5");
    }

    #[test]
    fn uniform_low_utilization_is_level_zero() {
        let util = vec![0.5f32; 16 * 16];
        let lm = level_map(&util, 16, 16, 0.9);
        assert!(lm.iter().all(|&l| l == 0));
    }

    #[test]
    fn levels_cap_at_grid() {
        // Fully hot 8x8 grid: largest window is 8 = 2^3.
        let util = vec![2.0f32; 8 * 8];
        let lm = level_map(&util, 8, 8, 0.9);
        assert_eq!(*lm.iter().max().unwrap(), 3);
    }
}
