//! A congestion-aware maze router (A*) — the algorithmic family Vivado's
//! initial router belongs to, offered as an alternative to the fast
//! pattern router of [`crate::global`].
//!
//! Each two-pin connection is routed with A* on the tile grid inside its
//! bounding box inflated by a detour margin. Edge costs combine unit
//! wirelength with a quadratic congestion penalty on the directional wire
//! being consumed, so later nets avoid saturated tiles; a rip-up-and-reroute
//! pass re-routes connections that still cross overflowed edges.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mfaplace_fpga::design::Design;
use mfaplace_fpga::placement::Placement;
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::SliceRandom;
use mfaplace_rt::rng::StdRng;

use crate::congestion::{Direction, WireClass};
use crate::global::{RoutingOutcome, UsageMaps};
use crate::RouterConfig;

/// One step of a routed path: the directional wire consumed when leaving
/// tile `(x, y)` toward `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Direction of travel.
    pub dir: Direction,
    /// Tile whose directional wire is consumed.
    pub x: usize,
    /// Tile y.
    pub y: usize,
}

struct MazeConn {
    from: (usize, usize),
    to: (usize, usize),
    class: WireClass,
    path: Vec<Step>,
}

/// Routes all nets with the A* maze router, returning the same outcome type
/// as the pattern router.
pub fn route_maze(design: &Design, placement: &Placement, cfg: &RouterConfig) -> RoutingOutcome {
    let sx = cfg.grid_w as f32 / design.arch.width();
    let sy = cfg.grid_h as f32 / design.arch.height();
    let tile = |x: f32, y: f32| -> (usize, usize) {
        (
            ((x * sx) as usize).min(cfg.grid_w - 1),
            ((y * sy) as usize).min(cfg.grid_h - 1),
        )
    };

    // Star decomposition, as in the pattern router.
    let mut conns: Vec<MazeConn> = Vec::new();
    for (_, net) in design.netlist.nets() {
        let mut txs: Vec<usize> = Vec::with_capacity(net.degree());
        let mut tys: Vec<usize> = Vec::with_capacity(net.degree());
        for &p in &net.pins {
            let (x, y) = placement.pos(p.0 as usize);
            let (tx, ty) = tile(x, y);
            txs.push(tx);
            tys.push(ty);
        }
        let mut xs = txs.clone();
        let mut ys = tys.clone();
        xs.sort_unstable();
        ys.sort_unstable();
        let center = (xs[xs.len() / 2], ys[ys.len() / 2]);
        for (&tx, &ty) in txs.iter().zip(&tys) {
            if (tx, ty) == center {
                continue;
            }
            let span = tx.abs_diff(center.0) + ty.abs_diff(center.1);
            let class = if span >= cfg.global_threshold {
                WireClass::Global
            } else {
                WireClass::Short
            };
            conns.push(MazeConn {
                from: (tx, ty),
                to: center,
                class,
                path: Vec::new(),
            });
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    conns.shuffle(&mut rng);

    let mut usage = UsageMaps::new(cfg.grid_w, cfg.grid_h);
    let mut total_wl = 0.0f64;
    for c in &mut conns {
        c.path = astar(&usage, c, cfg);
        apply(&mut usage, c, 1.0);
        total_wl += c.path.len() as f64;
    }
    for _ in 0..cfg.rrr_passes {
        for c in conns.iter_mut() {
            if !crosses_overflow(&usage, c, cfg) {
                continue;
            }
            apply(&mut usage, c, -1.0);
            total_wl -= c.path.len() as f64;
            let path = astar(&usage, c, cfg);
            c.path = path;
            total_wl += c.path.len() as f64;
            // Split borrow: path applied after recompute.
            apply_at(&mut usage, c, 1.0);
        }
    }

    let total_overflow = usage.total_overflow(cfg.short_cap, cfg.global_cap);
    RoutingOutcome {
        usage,
        total_wirelength: total_wl,
        total_overflow,
        connections: conns.len(),
    }
}

fn cap_of(cfg: &RouterConfig, class: WireClass) -> f32 {
    match class {
        WireClass::Short => cfg.short_cap,
        WireClass::Global => cfg.global_cap,
    }
}

fn apply(usage: &mut UsageMaps, c: &MazeConn, sign: f32) {
    for s in &c.path {
        usage.add(c.class, s.dir, s.x, s.y, sign);
    }
}

fn apply_at(usage: &mut UsageMaps, c: &MazeConn, sign: f32) {
    apply(usage, c, sign);
}

fn crosses_overflow(usage: &UsageMaps, c: &MazeConn, cfg: &RouterConfig) -> bool {
    let cap = cap_of(cfg, c.class);
    c.path
        .iter()
        .any(|s| usage.usage(c.class, s.dir, s.x, s.y) > cap)
}

/// Detour margin around the connection bounding box, in tiles.
const DETOUR: usize = 4;

fn astar(usage: &UsageMaps, c: &MazeConn, cfg: &RouterConfig) -> Vec<Step> {
    let (w, h) = (cfg.grid_w, cfg.grid_h);
    let cap = cap_of(cfg, c.class);
    // Search window.
    let x0 = c.from.0.min(c.to.0).saturating_sub(DETOUR);
    let x1 = (c.from.0.max(c.to.0) + DETOUR).min(w - 1);
    let y0 = c.from.1.min(c.to.1).saturating_sub(DETOUR);
    let y1 = (c.from.1.max(c.to.1) + DETOUR).min(h - 1);
    let ww = x1 - x0 + 1;
    let wh = y1 - y0 + 1;
    let idx = |x: usize, y: usize| (y - y0) * ww + (x - x0);

    // Cost of consuming the directional wire leaving (x, y) toward dir.
    let edge_cost = |dir: Direction, x: usize, y: usize| -> f32 {
        let u = usage.usage(c.class, dir, x, y);
        let over = (u + 1.0 - cap).max(0.0) / cap;
        1.0 + 4.0 * over * over + 0.25 * (u / cap) * (u / cap)
    };
    let heuristic =
        |x: usize, y: usize| -> f32 { (x.abs_diff(c.to.0) + y.abs_diff(c.to.1)) as f32 };

    let mut dist = vec![f32::INFINITY; ww * wh];
    let mut prev: Vec<Option<Step>> = vec![None; ww * wh];
    // Order by f-score; ties broken arbitrarily. f32 is not Ord, so store
    // a scaled integer key.
    let key = |f: f32| (f * 1024.0) as u64;
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    dist[idx(c.from.0, c.from.1)] = 0.0;
    heap.push(Reverse((
        key(heuristic(c.from.0, c.from.1)),
        c.from.0,
        c.from.1,
    )));

    while let Some(Reverse((_, x, y))) = heap.pop() {
        if (x, y) == c.to {
            break;
        }
        let d = dist[idx(x, y)];
        let neighbours = [
            (Direction::East, x as isize + 1, y as isize),
            (Direction::West, x as isize - 1, y as isize),
            (Direction::North, x as isize, y as isize + 1),
            (Direction::South, x as isize, y as isize - 1),
        ];
        for (dir, nx, ny) in neighbours {
            if nx < x0 as isize || ny < y0 as isize || nx > x1 as isize || ny > y1 as isize {
                continue;
            }
            let (nx, ny) = (nx as usize, ny as usize);
            let nd = d + edge_cost(dir, x, y);
            if nd < dist[idx(nx, ny)] {
                dist[idx(nx, ny)] = nd;
                prev[idx(nx, ny)] = Some(Step { dir, x, y });
                heap.push(Reverse((key(nd + heuristic(nx, ny)), nx, ny)));
            }
        }
    }

    // Reconstruct (fall back to an L-path if the window search failed,
    // which cannot happen for a connected window, but stay safe).
    let mut path = Vec::new();
    let mut cur = c.to;
    while cur != c.from {
        let Some(step) = prev[idx(cur.0, cur.1)] else {
            return l_path(c);
        };
        path.push(step);
        cur = (step.x, step.y);
    }
    path.reverse();
    path
}

/// Straight horizontal-then-vertical fallback path.
fn l_path(c: &MazeConn) -> Vec<Step> {
    let mut path = Vec::new();
    let (mut x, mut y) = c.from;
    while x != c.to.0 {
        let dir = if x < c.to.0 {
            Direction::East
        } else {
            Direction::West
        };
        path.push(Step { dir, x, y });
        x = if x < c.to.0 { x + 1 } else { x - 1 };
    }
    while y != c.to.1 {
        let dir = if y < c.to.1 {
            Direction::North
        } else {
            Direction::South
        };
        path.push(Step { dir, x, y });
        y = if y < c.to.1 { y + 1 } else { y - 1 };
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::GlobalRouter;
    use mfaplace_fpga::design::DesignPreset;

    fn setup() -> (Design, Placement, RouterConfig) {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        let cfg = RouterConfig {
            grid_w: 32,
            grid_h: 32,
            ..RouterConfig::default()
        };
        (d, p, cfg)
    }

    #[test]
    fn maze_routes_all_connections() {
        let (d, p, cfg) = setup();
        let out = route_maze(&d, &p, &cfg);
        assert!(out.connections > 0);
        assert!(out.total_wirelength > 0.0);
    }

    #[test]
    fn maze_wirelength_close_to_pattern_router() {
        let (d, p, cfg) = setup();
        let maze = route_maze(&d, &p, &cfg);
        let pattern = GlobalRouter::new(cfg).route(&d, &p);
        // Maze may detour around congestion but stays within a small factor.
        let ratio = maze.total_wirelength / pattern.total_wirelength;
        assert!((0.9..1.3).contains(&ratio), "wl ratio {ratio}");
    }

    #[test]
    fn maze_overflow_not_worse_than_pattern() {
        let (d, p, mut cfg) = setup();
        cfg.short_cap = 4.0;
        cfg.global_cap = 2.0;
        let maze = route_maze(&d, &p, &cfg);
        let pattern = GlobalRouter::new(cfg).route(&d, &p);
        assert!(
            f64::from(maze.total_overflow) <= f64::from(pattern.total_overflow) * 1.05,
            "maze {} vs pattern {}",
            maze.total_overflow,
            pattern.total_overflow
        );
    }

    #[test]
    fn l_path_has_manhattan_length() {
        let c = MazeConn {
            from: (2, 3),
            to: (7, 1),
            class: WireClass::Short,
            path: Vec::new(),
        };
        assert_eq!(l_path(&c).len(), 5 + 2);
    }

    #[test]
    fn astar_is_manhattan_on_empty_grid() {
        let (_, _, cfg) = setup();
        let usage = UsageMaps::new(cfg.grid_w, cfg.grid_h);
        let c = MazeConn {
            from: (1, 1),
            to: (9, 6),
            class: WireClass::Short,
            path: Vec::new(),
        };
        let path = astar(&usage, &c, &cfg);
        assert_eq!(path.len(), 8 + 5, "uncongested A* must be shortest");
    }
}
