//! Property-based tests of scoring monotonicity and congestion-level
//! semantics.

use mfaplace_router::congestion::utilization_grade;
use mfaplace_router::score::{RoutabilityScore, ScoreInputs};
use proptest::prelude::*;

proptest! {
    #[test]
    fn s_ir_monotone_in_levels(levels in proptest::collection::vec(0u8..8, 8), bump in 0usize..8) {
        let base = ScoreInputs {
            l_short: [levels[0], levels[1], levels[2], levels[3]],
            l_global: [levels[4], levels[5], levels[6], levels[7]],
            s_dr: 8,
            t_macro_min: 5.0,
            t_pr_hours: 0.5,
        };
        let mut bumped = base;
        if bump < 4 {
            bumped.l_short[bump] = bumped.l_short[bump].saturating_add(1).min(7);
        } else {
            bumped.l_global[bump - 4] = bumped.l_global[bump - 4].saturating_add(1).min(7);
        }
        prop_assert!(
            RoutabilityScore::new(bumped).s_ir() >= RoutabilityScore::new(base).s_ir()
        );
    }

    #[test]
    fn s_score_scales_linearly_in_pnr_time(l in 0u8..8, sdr in 4u32..20, t in 0.1f64..2.0) {
        let mk = |t_pr| RoutabilityScore::new(ScoreInputs {
            l_short: [l, 0, 0, 0],
            l_global: [0, 0, 0, 0],
            s_dr: sdr,
            t_macro_min: 3.0,
            t_pr_hours: t_pr,
        });
        let one = mk(t);
        let two = mk(2.0 * t);
        prop_assert!((two.s_score() - 2.0 * one.s_score()).abs() < 1e-9);
    }

    #[test]
    fn levels_at_most_three_never_penalized(levels in proptest::collection::vec(0u8..4, 8)) {
        let s = RoutabilityScore::new(ScoreInputs {
            l_short: [levels[0], levels[1], levels[2], levels[3]],
            l_global: [levels[4], levels[5], levels[6], levels[7]],
            s_dr: 10,
            t_macro_min: 2.0,
            t_pr_hours: 0.4,
        });
        prop_assert_eq!(s.s_ir(), 1.0);
    }

    #[test]
    fn utilization_grade_monotone(u1 in 0.0f32..3.0, u2 in 0.0f32..3.0) {
        if u1 <= u2 {
            prop_assert!(utilization_grade(u1) <= utilization_grade(u2));
        } else {
            prop_assert!(utilization_grade(u1) >= utilization_grade(u2));
        }
    }

    #[test]
    fn utilization_grade_range(u in 0.0f32..100.0) {
        prop_assert!(utilization_grade(u) <= 7);
        if u < 0.5 {
            prop_assert_eq!(utilization_grade(u), 0);
        }
    }

    #[test]
    fn macro_runtime_multiplier_kicks_in_after_ten_minutes(t in 0.0f64..30.0) {
        let s = RoutabilityScore::new(ScoreInputs {
            l_short: [0; 4],
            l_global: [0; 4],
            s_dr: 8,
            t_macro_min: t,
            t_pr_hours: 1.0,
        });
        let expected = (1.0 + (t - 10.0).max(0.0)) * 8.0;
        prop_assert!((s.s_score() - expected).abs() < 1e-9);
    }
}
