//! Randomized tests of scoring monotonicity and congestion-level semantics
//! (fixed seeds, in-tree harness).

use mfaplace_router::congestion::utilization_grade;
use mfaplace_router::score::{RoutabilityScore, ScoreInputs};
use mfaplace_rt::check::{run_cases, vec_u8};
use mfaplace_rt::rng::Rng;

#[test]
fn s_ir_monotone_in_levels() {
    run_cases("s_ir_monotone_in_levels", 64, 0x40_01, |_case, rng| {
        let levels = vec_u8(rng, 8, 0, 8);
        let bump = rng.gen_range(0usize..8);
        let base = ScoreInputs {
            l_short: [levels[0], levels[1], levels[2], levels[3]],
            l_global: [levels[4], levels[5], levels[6], levels[7]],
            s_dr: 8,
            t_macro_min: 5.0,
            t_pr_hours: 0.5,
        };
        let mut bumped = base;
        if bump < 4 {
            bumped.l_short[bump] = bumped.l_short[bump].saturating_add(1).min(7);
        } else {
            bumped.l_global[bump - 4] = bumped.l_global[bump - 4].saturating_add(1).min(7);
        }
        assert!(RoutabilityScore::new(bumped).s_ir() >= RoutabilityScore::new(base).s_ir());
    });
}

#[test]
fn s_score_scales_linearly_in_pnr_time() {
    run_cases(
        "s_score_scales_linearly_in_pnr_time",
        64,
        0x40_02,
        |_case, rng| {
            let l = rng.gen_range(0u8..8);
            let sdr = rng.gen_range(4u32..20);
            let t = rng.gen_range(0.1f64..2.0);
            let mk = |t_pr| {
                RoutabilityScore::new(ScoreInputs {
                    l_short: [l, 0, 0, 0],
                    l_global: [0, 0, 0, 0],
                    s_dr: sdr,
                    t_macro_min: 3.0,
                    t_pr_hours: t_pr,
                })
            };
            let one = mk(t);
            let two = mk(2.0 * t);
            assert!((two.s_score() - 2.0 * one.s_score()).abs() < 1e-9);
        },
    );
}

#[test]
fn levels_at_most_three_never_penalized() {
    run_cases(
        "levels_at_most_three_never_penalized",
        64,
        0x40_03,
        |_case, rng| {
            let levels = vec_u8(rng, 8, 0, 4);
            let s = RoutabilityScore::new(ScoreInputs {
                l_short: [levels[0], levels[1], levels[2], levels[3]],
                l_global: [levels[4], levels[5], levels[6], levels[7]],
                s_dr: 10,
                t_macro_min: 2.0,
                t_pr_hours: 0.4,
            });
            assert_eq!(s.s_ir(), 1.0);
        },
    );
}

#[test]
fn utilization_grade_monotone() {
    run_cases("utilization_grade_monotone", 64, 0x40_04, |_case, rng| {
        let u1 = rng.gen_range(0.0f32..3.0);
        let u2 = rng.gen_range(0.0f32..3.0);
        if u1 <= u2 {
            assert!(utilization_grade(u1) <= utilization_grade(u2));
        } else {
            assert!(utilization_grade(u1) >= utilization_grade(u2));
        }
    });
}

#[test]
fn utilization_grade_range() {
    run_cases("utilization_grade_range", 64, 0x40_05, |_case, rng| {
        let u = rng.gen_range(0.0f32..100.0);
        assert!(utilization_grade(u) <= 7);
        if u < 0.5 {
            assert_eq!(utilization_grade(u), 0);
        }
    });
}

#[test]
fn macro_runtime_multiplier_kicks_in_after_ten_minutes() {
    run_cases(
        "macro_runtime_multiplier_kicks_in_after_ten_minutes",
        64,
        0x40_06,
        |_case, rng| {
            let t = rng.gen_range(0.0f64..30.0);
            let s = RoutabilityScore::new(ScoreInputs {
                l_short: [0; 4],
                l_global: [0; 4],
                s_dr: 8,
                t_macro_min: t,
                t_pr_hours: 1.0,
            });
            let expected = (1.0 + (t - 10.0).max(0.0)) * 8.0;
            assert!((s.s_score() - expected).abs() < 1e-9);
        },
    );
}
