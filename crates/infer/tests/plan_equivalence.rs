//! Plan-vs-tape equivalence across the whole model zoo.
//!
//! The contract under test: with default options a compiled plan's output
//! is **bitwise identical** to the dynamic tape forward for every zoo
//! architecture, batch size and grid size; with `fold_bn` it agrees to
//! ≤1e-6. Also asserts the zero-allocation contract (stable arena, no
//! regrowth across forwards) and the fusion/stats counters.

use std::collections::HashMap;

use mfaplace_autograd::Graph;
use mfaplace_infer::{Plan, PlanExecutor, PlanOptions};
use mfaplace_models::{AnyModel, Arch, ArchSpec, CongestionModel};
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

const ARCHS: [Arch; 4] = [Arch::Ours, Arch::UNet, Arch::Pgnn, Arch::Pros2];

/// Small-but-complete spec: every structural feature on (MFA, ViT) at a
/// test-friendly width.
fn spec_for(arch: Arch, grid: usize) -> ArchSpec {
    let mut spec = ArchSpec::new(arch, grid);
    spec.base_channels = 2;
    spec.vit_layers = 1;
    spec.vit_heads = 2;
    spec.use_mfa = true;
    spec.mfa_reduction = 4;
    spec
}

/// Deterministic pseudo-random `[b, 6, grid, grid]` input.
fn input_for(b: usize, grid: usize) -> Tensor {
    let n = b * 6 * grid * grid;
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2_654_435_761);
            (h >> 8) as f32 / (1 << 24) as f32 * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(vec![b, 6, grid, grid], data).expect("input tensor")
}

struct Recorded {
    tape_out: Vec<f32>,
    plan: Plan,
}

/// Records one eval-mode forward on the tape and compiles it.
fn record(
    g: &mut Graph,
    model: &mut AnyModel,
    x: &Tensor,
    opts: PlanOptions,
    cache: &mut HashMap<usize, std::sync::Arc<Tensor>>,
) -> Recorded {
    let mark = g.mark();
    let xv = g.constant(x.clone());
    let y = model.forward(g, xv, false);
    let tape_out = g.value(y).data().to_vec();
    let plan = Plan::capture_cached(g, mark, xv, y, opts, cache).expect("plan capture");
    g.truncate(mark);
    Recorded { tape_out, plan }
}

fn build(arch: Arch, grid: usize) -> (Graph, AnyModel) {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(7);
    let model = spec_for(arch, grid)
        .build(&mut g, &mut rng)
        .expect("build model");
    g.set_grad_enabled(false);
    (g, model)
}

fn assert_bitwise(arch: Arch, b: usize, grid: usize, tape: &[f32], plan: &[f32]) {
    assert_eq!(tape.len(), plan.len(), "{arch:?} b={b} grid={grid}: length");
    for (i, (t, p)) in tape.iter().zip(plan).enumerate() {
        assert_eq!(
            t.to_bits(),
            p.to_bits(),
            "{arch:?} b={b} grid={grid}: output[{i}] tape={t} plan={p}"
        );
    }
}

#[test]
fn plan_matches_tape_bitwise_across_zoo_batches_and_grids() {
    for arch in ARCHS {
        for grid in [16, 32] {
            let (mut g, mut model) = build(arch, grid);
            let mut cache = HashMap::new();
            for b in [1, 3, 8] {
                let x = input_for(b, grid);
                let rec = record(&mut g, &mut model, &x, PlanOptions::default(), &mut cache);
                let mut exec = PlanExecutor::new(rec.plan);
                let got = exec.run_batch(x.data());
                assert_bitwise(arch, b, grid, &rec.tape_out, got);
            }
            // The per-model weight snapshot cache deduplicates parameters
            // across the three per-batch-size plans.
            assert!(!cache.is_empty(), "{arch:?}: weight cache unused");
        }
    }
}

#[test]
fn repeated_runs_reuse_the_arena_and_stay_bitwise_stable() {
    let (mut g, mut model) = build(Arch::Ours, 16);
    let x = input_for(3, 16);
    let mut cache = HashMap::new();
    let rec = record(&mut g, &mut model, &x, PlanOptions::default(), &mut cache);
    let mut exec = PlanExecutor::new(rec.plan);
    let first = exec.run_batch(x.data()).to_vec();
    let ptr = exec.arena_ptr();
    for _ in 0..3 {
        let again = exec.run_batch(x.data());
        assert_eq!(
            first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "outputs drifted across arena reuse"
        );
    }
    assert_eq!(ptr, exec.arena_ptr(), "arena was reallocated between runs");
    assert_eq!(exec.runs(), 4);
}

#[test]
fn fusion_collapses_conv_chains_and_reports_stats() {
    let (mut g, mut model) = build(Arch::Ours, 16);
    let x = input_for(2, 16);
    let mut cache = HashMap::new();
    let rec = record(&mut g, &mut model, &x, PlanOptions::default(), &mut cache);
    let s = rec.plan.stats();
    assert!(s.ops > 0);
    assert!(s.fused_conv_bias > 0, "no conv+bias fusions: {s:?}");
    assert!(s.fused_conv_affine > 0, "no conv+affine fusions: {s:?}");
    assert!(s.fused_conv_relu > 0, "no conv+relu fusions: {s:?}");
    assert!(s.folded_bn == 0, "fold_bn off by default: {s:?}");
    assert!(s.arena_bytes > 0 && s.weight_bytes > 0);
    assert_eq!(rec.plan.input_shape(), &[2, 6, 16, 16]);
    assert_eq!(rec.plan.output_shape(), &[2, 8, 16, 16]);
    let summary = rec.plan.summary();
    assert!(summary.contains("compiled plan"), "summary: {summary}");
    assert!(summary.contains("arena"), "summary: {summary}");
}

#[test]
fn fold_bn_rewrites_weights_and_stays_within_1e6() {
    for arch in ARCHS {
        let (mut g, mut model) = build(arch, 16);
        let x = input_for(2, 16);
        let mut cache = HashMap::new();
        let rec = record(
            &mut g,
            &mut model,
            &x,
            PlanOptions { fold_bn: true },
            &mut cache,
        );
        assert!(
            rec.plan.stats().folded_bn > 0,
            "{arch:?}: no BN epilogues folded: {:?}",
            rec.plan.stats()
        );
        let mut exec = PlanExecutor::new(rec.plan);
        let got = exec.run_batch(x.data());
        // ≤1e-6 in max-norm relative terms: pre-scaling the weights changes
        // conv accumulation rounding by a few ulps, and that error
        // propagates *additively* through later layers, so it is bounded
        // relative to the output scale rather than each element.
        let scale = rec.tape_out.iter().fold(1.0f32, |m, t| m.max(t.abs()));
        let max_err = rec
            .tape_out
            .iter()
            .zip(got)
            .map(|(t, p)| (t - p).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_err <= 1e-6 * scale,
            "{arch:?}: fold_bn deviates by {max_err} (> 1e-6 of output scale {scale})"
        );
    }
}

#[test]
fn capture_rejects_training_only_tapes() {
    let mut g = Graph::new();
    let w = g.param(Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap());
    let mark = g.mark();
    let x = g.constant(Tensor::from_vec(vec![2], vec![3.0, 4.0]).unwrap());
    let y = g.mul(w, x);
    let loss = g.mean(y);
    let err = Plan::capture(&g, mark, x, loss, PlanOptions::default()).unwrap_err();
    assert!(err.contains("training-only"), "unexpected error: {err}");
}
