//! Parallel level-scheduler and copy-elision safety suite.
//!
//! The contract under test: executing a compiled plan with any worker
//! count is **bitwise identical** to serial replay, for every zoo
//! architecture — same-level ops write pairwise-disjoint arena spans and
//! every kernel is deterministic at any worker count, so the merge order
//! of a level cannot change the result. Also pins the copy-elision
//! aliasing rules: eliding a reshape never changes outputs, even when the
//! elided source is read again *after* the alias is created.

use std::collections::HashMap;

use mfaplace_autograd::Graph;
use mfaplace_infer::{plan_workers_from_str, run_plan_workers, Plan, PlanExecutor, PlanOptions};
use mfaplace_models::{AnyModel, Arch, ArchSpec, CongestionModel};
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

const ARCHS: [Arch; 4] = [Arch::Ours, Arch::UNet, Arch::Pgnn, Arch::Pros2];

/// Small-but-complete spec: every structural feature on (MFA, ViT) at a
/// test-friendly width.
fn spec_for(arch: Arch, grid: usize) -> ArchSpec {
    let mut spec = ArchSpec::new(arch, grid);
    spec.base_channels = 2;
    spec.vit_layers = 1;
    spec.vit_heads = 2;
    spec.use_mfa = true;
    spec.mfa_reduction = 4;
    spec
}

/// Deterministic pseudo-random `[b, 6, grid, grid]` input.
fn input_for(b: usize, grid: usize) -> Tensor {
    let n = b * 6 * grid * grid;
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2_654_435_761);
            (h >> 8) as f32 / (1 << 24) as f32 * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(vec![b, 6, grid, grid], data).expect("input tensor")
}

fn build(arch: Arch, grid: usize) -> (Graph, AnyModel) {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(7);
    let model = spec_for(arch, grid)
        .build(&mut g, &mut rng)
        .expect("build model");
    g.set_grad_enabled(false);
    (g, model)
}

/// Records one eval-mode forward on the tape and compiles it.
fn record(g: &mut Graph, model: &mut AnyModel, x: &Tensor) -> (Vec<f32>, Plan) {
    let mark = g.mark();
    let xv = g.constant(x.clone());
    let y = model.forward(g, xv, false);
    let tape_out = g.value(y).data().to_vec();
    let mut cache = HashMap::new();
    let plan = Plan::capture_cached(g, mark, xv, y, PlanOptions::default(), &mut cache)
        .expect("plan capture");
    g.truncate(mark);
    (tape_out, plan)
}

fn assert_bitwise(what: &str, want: &[f32], got: &[f32]) {
    assert_eq!(want.len(), got.len(), "{what}: length");
    for (i, (w, p)) in want.iter().zip(got).enumerate() {
        assert_eq!(
            w.to_bits(),
            p.to_bits(),
            "{what}: output[{i}] want={w} got={p}"
        );
    }
}

#[test]
fn parallel_execution_is_bitwise_identical_to_serial_across_zoo() {
    for arch in ARCHS {
        for grid in [16, 32] {
            let (mut g, mut model) = build(arch, grid);
            let x = input_for(2, grid);
            let (tape_out, plan) = record(&mut g, &mut model, &x);
            let mut arena = Vec::new();
            let serial = run_plan_workers(&plan, &mut arena, x.data(), 1).to_vec();
            assert_bitwise(
                &format!("{arch:?} grid={grid} serial-vs-tape"),
                &tape_out,
                &serial,
            );
            for workers in [2, 4] {
                let got = run_plan_workers(&plan, &mut arena, x.data(), workers);
                assert_bitwise(
                    &format!("{arch:?} grid={grid} workers={workers}"),
                    &serial,
                    got,
                );
            }
        }
    }
}

#[test]
fn executor_worker_count_is_configurable_and_output_stable() {
    let (mut g, mut model) = build(Arch::Ours, 16);
    let x = input_for(3, 16);
    let (tape_out, plan) = record(&mut g, &mut model, &x);
    let mut exec = PlanExecutor::new(plan);
    exec.set_workers(1);
    let serial = exec.run_batch(x.data()).to_vec();
    assert_bitwise("Ours serial-vs-tape", &tape_out, &serial);
    for workers in [2, 4] {
        exec.set_workers(workers);
        assert_eq!(exec.workers(), workers);
        let got = exec.run_batch(x.data());
        assert_bitwise(&format!("Ours workers={workers}"), &serial, got);
    }
    // set_workers clamps to ≥ 1.
    exec.set_workers(0);
    assert_eq!(exec.workers(), 1);
}

#[test]
fn scheduler_finds_parallel_width_and_reports_stats() {
    for arch in ARCHS {
        let (mut g, mut model) = build(arch, 16);
        let x = input_for(1, 16);
        let (_, plan) = record(&mut g, &mut model, &x);
        let s = plan.stats();
        assert!(s.levels > 0, "{arch:?}: no levels: {s:?}");
        assert!(s.levels <= s.ops, "{arch:?}: more levels than ops: {s:?}");
        if arch == Arch::Ours {
            // The MFA block's parallel dilation branches and the ViT
            // attention path give the paper's architecture levels wider
            // than one op, and its reshapes all elide into aliases. (A
            // plain sequential conv stack like UNet legitimately has
            // width 1 and nothing to elide.)
            assert!(
                s.max_level_width >= 2,
                "{arch:?}: scheduler found no intra-plan parallelism: {s:?}"
            );
            assert!(s.copies_elided > 0, "{arch:?}: no reshapes elided: {s:?}");
        }
        let summary = plan.summary();
        assert!(summary.contains("scheduler"), "summary: {summary}");
        assert!(summary.contains("critical path"), "summary: {summary}");
    }
}

/// Regression: a reshape whose *source* is read again after the alias is
/// created. Eliding `b = reshape(a)` makes `b` an alias of `a`'s span; if
/// liveness were computed per-value instead of per-alias-class, `a`'s span
/// could be freed and recycled while `b` still needs it, or the later
/// `scale(a)` read could observe a clobbered span.
#[test]
fn copy_elision_is_safe_when_source_is_read_after_the_alias() {
    let mut g = Graph::new();
    g.set_grad_enabled(false);
    let mark = g.mark();
    let x = g.constant(input_for(1, 4)); // [1, 6, 4, 4], 96 elements
    let a = g.relu(x);
    let b = g.reshape(a, vec![1, 96]); // alias candidate for a's span
    let c = g.scale(a, 2.0); // reads a AFTER b aliased it
    let b2 = g.reshape(b, vec![1, 6, 4, 4]); // alias chain through b
    let y = g.add(b2, c);
    let tape_out = g.value(y).data().to_vec();

    let plan = Plan::capture(&g, mark, x, y, PlanOptions::default()).expect("capture");
    let s = plan.stats();
    assert!(s.copies_elided >= 2, "reshapes not elided: {s:?}");
    let mut arena = Vec::new();
    for workers in [1, 2, 4] {
        let got = run_plan_workers(&plan, &mut arena, g.value(x).data(), workers);
        assert_bitwise(&format!("elision workers={workers}"), &tape_out, got);
    }
}

/// A reshape that *is* the plan output and roots at the input must keep
/// its Copy: the executor hands out an arena slice, so the output has to
/// live in the arena even when the data is just the input reinterpreted.
#[test]
fn output_reshape_of_the_input_keeps_its_copy() {
    let mut g = Graph::new();
    g.set_grad_enabled(false);
    let mark = g.mark();
    let x = g.constant(input_for(1, 4));
    let y = g.reshape(x, vec![96]);
    let tape_out = g.value(y).data().to_vec();

    let plan = Plan::capture(&g, mark, x, y, PlanOptions::default()).expect("capture");
    let mut arena = Vec::new();
    let got = run_plan_workers(&plan, &mut arena, g.value(x).data(), 4);
    assert_bitwise("input-rooted output reshape", &tape_out, got);
}

#[test]
fn plan_workers_env_parsing() {
    let fallback = plan_workers_from_str(None);
    assert!(fallback >= 1, "fallback must be a positive pool budget");
    assert_eq!(plan_workers_from_str(Some("4")), 4);
    assert_eq!(plan_workers_from_str(Some(" 2 ")), 2);
    assert_eq!(plan_workers_from_str(Some("1")), 1);
    // Zero, junk and empty all fall back to the pool budget.
    assert_eq!(plan_workers_from_str(Some("0")), fallback);
    assert_eq!(plan_workers_from_str(Some("lots")), fallback);
    assert_eq!(plan_workers_from_str(Some("")), fallback);
}
