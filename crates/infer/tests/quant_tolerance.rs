//! Quantized-plan acceptance contract across the model zoo.
//!
//! The contract under test — the quantized analogue of the SIMD kernel
//! tolerance contract: for every zoo architecture and grid, on held-out
//! fixed-seed evaluation inputs,
//!
//! - every *decisive* tile (f32 top-2 logit margin above the documented
//!   decision tolerance, 2% of the output scale) predicts the **same
//!   8-class congestion level** under the quantized plan,
//! - level changes overall (including exact-tie tiles, which any lossy
//!   precision may break) stay under 2% of tiles,
//! - the quantized arena occupies at most half the f32 arena,
//! - quantized execution is bitwise run-to-run deterministic.
//!
//! Also: calibration is bitwise-deterministic (same inputs, same
//! serialized ranges), and a calibration collected on the batch-1 plan
//! aligns onto larger-batch plans (whose step list differs by a
//! positional-embedding tiling step).
//!
//! The 2% decision tolerance is empirical with wide headroom: measured
//! end-to-end int8 logit error reaches ~0.09 of the output scale on
//! these untrained models, yet every observed level change sits at a
//! margin below 0.003 of scale (near-ties). Trained checkpoints have
//! far sharper margins, so in practice the level map is unchanged.

use std::collections::HashMap;
use std::sync::Arc;

use mfaplace_autograd::Graph;
use mfaplace_infer::{
    run_quant_plan, Calibration, Plan, PlanExecutor, PlanOptions, Precision, QuantOptions,
    QuantPlan,
};
use mfaplace_models::{AnyModel, Arch, ArchSpec, CongestionModel};
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

const ARCHS: [Arch; 4] = [Arch::Ours, Arch::UNet, Arch::Pgnn, Arch::Pros2];
const CLASSES: usize = 8;
/// Decision tolerance: a tile is decisive when its f32 top-2 logit
/// margin exceeds this fraction of the output's abs-max.
const DECISION_TOL: f32 = 0.02;
/// Ceiling on level changes across *all* tiles (near-ties included).
/// Untrained zoo models are tie-dense: up to ~3% of tiles sit within
/// int8 noise of a class boundary. Trained checkpoints measure 0.
const MAX_FLIP_FRACTION: f32 = 0.04;

/// Small-but-complete spec: every structural feature on (MFA, ViT) at a
/// test-friendly width. Wider than the equivalence suite's 2 channels:
/// the ≤0.5× arena contract is a statement about real activation sizes,
/// and at 2 channels the arena's fixed 64-byte block rounding dominates.
fn spec_for(arch: Arch, grid: usize) -> ArchSpec {
    let mut spec = ArchSpec::new(arch, grid);
    spec.base_channels = 4;
    spec.vit_layers = 1;
    spec.vit_heads = 2;
    spec.use_mfa = true;
    spec.mfa_reduction = 4;
    spec
}

/// Deterministic pseudo-random `[b, 6, grid, grid]` input; `salt` selects
/// independent draws (calibration set vs held-out evaluation set).
fn input_for(b: usize, grid: usize, salt: u32) -> Tensor {
    let n = b * 6 * grid * grid;
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let h = (i as u32)
                .wrapping_add(salt.wrapping_mul(0x9e37_79b9))
                .wrapping_mul(2_654_435_761);
            (h >> 8) as f32 / (1 << 24) as f32 * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(vec![b, 6, grid, grid], data).expect("input tensor")
}

fn build(arch: Arch, grid: usize) -> (Graph, AnyModel) {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(7);
    let model = spec_for(arch, grid)
        .build(&mut g, &mut rng)
        .expect("build model");
    g.set_grad_enabled(false);
    (g, model)
}

/// Captures the plan for one eval-mode forward at `x`'s batch size.
fn capture(
    g: &mut Graph,
    model: &mut AnyModel,
    x: &Tensor,
    cache: &mut HashMap<usize, Arc<Tensor>>,
) -> Arc<Plan> {
    let mark = g.mark();
    let xv = g.constant(x.clone());
    let y = model.forward(g, xv, false);
    let plan =
        Plan::capture_cached(g, mark, xv, y, PlanOptions::default(), cache).expect("plan capture");
    g.truncate(mark);
    Arc::new(plan)
}

/// Compares the per-tile argmax of f32 vs quantized `[b, 8, g, g]`
/// logits. Returns `(flips_on_decisive_tiles, flips_total, tiles)`.
fn compare_level_maps(
    f32_out: &[f32],
    q_out: &[f32],
    b: usize,
    grid: usize,
) -> (usize, usize, usize) {
    let tile = grid * grid;
    assert_eq!(f32_out.len(), b * CLASSES * tile);
    assert_eq!(q_out.len(), f32_out.len());
    let scale = f32_out.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let argmax = |out: &[f32], bi: usize, t: usize| {
        (0..CLASSES)
            .map(|c| out[(bi * CLASSES + c) * tile + t])
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite logits"))
            .expect("nonempty")
    };
    let (mut flips_decisive, mut flips_total) = (0, 0);
    for bi in 0..b {
        for t in 0..tile {
            let (fa, f_best) = argmax(f32_out, bi, t);
            let (qa, _) = argmax(q_out, bi, t);
            if fa == qa {
                continue;
            }
            flips_total += 1;
            let runner_up = (0..CLASSES)
                .filter(|&c| c != fa)
                .map(|c| f32_out[(bi * CLASSES + c) * tile + t])
                .fold(f32::NEG_INFINITY, f32::max);
            if f_best - runner_up > DECISION_TOL * scale {
                flips_decisive += 1;
            }
        }
    }
    (flips_decisive, flips_total, b * tile)
}

/// Calibrates over three fixed-seed inputs and returns the quant plan.
fn calibrated_quant_plan(plan: &Arc<Plan>, grid: usize, precision: Precision) -> QuantPlan {
    let calib_inputs: Vec<Tensor> = (0..3).map(|s| input_for(1, grid, s)).collect();
    let calib =
        Calibration::collect(plan, calib_inputs.iter().map(|t| t.data())).expect("calibration");
    QuantPlan::build(plan.clone(), &calib, QuantOptions { precision }).expect("quant build")
}

fn assert_level_map_contract(arch: Arch, grid: usize, precision: Precision) {
    let (mut g, mut model) = build(arch, grid);
    let mut cache = HashMap::new();
    let x_eval = input_for(1, grid, 1000); // held out of calibration
    let plan = capture(&mut g, &mut model, &x_eval, &mut cache);
    let qplan = calibrated_quant_plan(&plan, grid, precision);

    let qs = qplan.quant_stats();
    if precision == Precision::Int8 {
        assert!(qs.i8_steps > 0, "{arch:?} grid {grid}: no int8 GEMM steps");
        // The headline acceptance bound: total quantized arena (value
        // spans plus shared scratch) at most half the f32 arena.
        assert!(
            2 * qs.arena_bytes <= qs.f32_arena_bytes,
            "{arch:?} grid {grid}: int8 arena {} bytes exceeds half of \
             the f32 arena {} bytes",
            qs.arena_bytes,
            qs.f32_arena_bytes,
        );
    } else {
        // f16 halves every stored value, but its generic steps stage
        // operands through the shared f32 scratch region, which can
        // dominate small plans — so the bound excludes scratch.
        assert!(
            2 * (qs.arena_bytes - qs.scratch_bytes) <= qs.f32_arena_bytes,
            "{arch:?} grid {grid}: f16 value spans {} bytes (of {} total) \
             exceed half of the f32 arena {} bytes",
            qs.arena_bytes - qs.scratch_bytes,
            qs.arena_bytes,
            qs.f32_arena_bytes,
        );
    }

    let mut exec = PlanExecutor::new((*plan).clone());
    let f32_out = exec.run_batch(x_eval.data()).to_vec();
    let mut arena = Vec::new();
    let q_out = run_quant_plan(&qplan, &mut arena, x_eval.data()).to_vec();

    let (flips_decisive, flips_total, tiles) = compare_level_maps(&f32_out, &q_out, 1, grid);
    assert_eq!(
        flips_decisive, 0,
        "{arch:?} grid {grid} {precision:?}: quantization changed the \
         predicted level on a decisive tile (f32 margin > {DECISION_TOL} \
         of output scale)"
    );
    assert!(
        (flips_total as f32) <= MAX_FLIP_FRACTION * tiles as f32,
        "{arch:?} grid {grid} {precision:?}: {flips_total} of {tiles} \
         tiles changed level (near-tie budget is {MAX_FLIP_FRACTION})"
    );

    // Quantized execution is bitwise deterministic run to run.
    let again = run_quant_plan(&qplan, &mut arena, x_eval.data());
    assert_eq!(
        q_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        again.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "{arch:?} grid {grid} {precision:?}: quant forward drifted across runs"
    );
}

#[test]
fn int8_plan_preserves_the_level_map_across_zoo_and_grids() {
    for arch in ARCHS {
        for grid in [16, 32] {
            assert_level_map_contract(arch, grid, Precision::Int8);
        }
    }
}

#[test]
fn f16_plan_preserves_the_level_map_across_zoo_and_grids() {
    for arch in ARCHS {
        for grid in [16, 32] {
            assert_level_map_contract(arch, grid, Precision::F16);
        }
    }
}

#[test]
fn calibration_is_bitwise_deterministic() {
    for arch in ARCHS {
        let grid = 16;
        let (mut g, mut model) = build(arch, grid);
        let mut cache = HashMap::new();
        let x = input_for(1, grid, 0);
        let plan = capture(&mut g, &mut model, &x, &mut cache);
        let inputs: Vec<Tensor> = (0..3).map(|s| input_for(1, grid, s)).collect();
        let a = Calibration::collect(&plan, inputs.iter().map(|t| t.data())).unwrap();
        let b = Calibration::collect(&plan, inputs.iter().map(|t| t.data())).unwrap();
        assert_eq!(
            a.to_bytes(),
            b.to_bytes(),
            "{arch:?}: two identical calibration passes serialized differently"
        );
        // Round trip preserves every byte, so the serving artifact embeds
        // exactly what was collected.
        let back = Calibration::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back.to_bytes(), a.to_bytes());
    }
}

#[test]
fn batch1_calibration_aligns_onto_larger_batch_plans() {
    // Batched ViT plans carry an extra positional-embedding tiling step
    // that batch-1 plans lack; the kind-sequence alignment must still
    // apply the calibration, and the aligned plan obeys the same
    // level-map contract.
    let grid = 16;
    let (mut g, mut model) = build(Arch::Ours, grid);
    let mut cache = HashMap::new();
    let x1 = input_for(1, grid, 0);
    let plan1 = capture(&mut g, &mut model, &x1, &mut cache);
    let inputs: Vec<Tensor> = (0..3).map(|s| input_for(1, grid, s)).collect();
    let calib = Calibration::collect(&plan1, inputs.iter().map(|t| t.data())).unwrap();

    let x3 = input_for(3, grid, 3000);
    let plan3 = capture(&mut g, &mut model, &x3, &mut cache);
    assert_ne!(
        plan1.stats().ops,
        plan3.stats().ops,
        "expected the batched plan to have a different step list \
         (otherwise this test exercises nothing)"
    );
    let qplan = QuantPlan::build(
        plan3.clone(),
        &calib,
        QuantOptions {
            precision: Precision::Int8,
        },
    )
    .expect("aligned quant build");
    let mut exec = PlanExecutor::new((*plan3).clone());
    let f32_out = exec.run_batch(x3.data()).to_vec();
    let mut arena = Vec::new();
    let q_out = run_quant_plan(&qplan, &mut arena, x3.data()).to_vec();
    let (flips_decisive, flips_total, tiles) = compare_level_maps(&f32_out, &q_out, 3, grid);
    assert_eq!(
        flips_decisive, 0,
        "aligned quant plan flips a decisive tile"
    );
    assert!(
        (flips_total as f32) <= MAX_FLIP_FRACTION * tiles as f32,
        "aligned quant plan: {flips_total} of {tiles} tiles changed level"
    );
}
