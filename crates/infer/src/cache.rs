//! A process-wide, byte-bounded LRU cache of compiled plans — f32
//! [`Plan`]s and quantized [`QuantPlan`]s side by side.
//!
//! The serve layer's model fleet loads N checkpoints, and each predictor
//! compiles one plan per (bucketed) input shape. Without sharing, two
//! slots loaded from the *same* checkpoint file would compile and hold two
//! identical plan sets — duplicated op lists and, much worse, duplicated
//! weight snapshots. [`PlanCache`] fixes both:
//!
//! - **Keying** — a [`PlanKey`] is `(weight identity, input shape,
//!   precision, fold_bn)`. The weight identity is the checkpoint file's
//!   *content hash* ([`PlanSource::Content`]) for file-loaded predictors,
//!   so any two predictors rebuilt from byte-identical checkpoints resolve
//!   to the same entries, regardless of path or load order. In-memory
//!   models (trainers, tests) get a process-unique nonce
//!   ([`PlanSource::unique`]) and therefore never share. The precision
//!   axis keeps an int8 plan and an f32 plan for the same checkpoint+shape
//!   under distinct keys; the fold axis separates BN-folded plans (folding
//!   rewrites weights, so folded and unfolded plans are not
//!   interchangeable at any precision).
//! - **Byte bounding** — every entry is charged its arena bytes, weight
//!   bytes (f32 table plus, for quantized plans, the int8 weight copies)
//!   *and* plan metadata (op list, value/liveness tables — see
//!   [`Plan::metadata_bytes`]); inserts evict least-recently-used entries
//!   until the budget holds again. The newest entry is never evicted, so a
//!   single plan larger than the whole budget still serves (the cache is
//!   then temporarily over budget by that one entry). Weight tables shared
//!   across entries via `Arc` are charged once per entry — a deliberate
//!   overcount that keeps the bound conservative.
//! - **Observability** — [`PlanCache::stats`] reports entries, bytes,
//!   hits, misses and evictions; the serve layer republishes them as
//!   `mfaplace_plan_cache_*` gauges on every `/metrics` scrape.
//!
//! Lookups and inserts are `Mutex`-serialized; compilation itself must
//! happen *outside* the lock (callers do `get` → capture → `insert`), so
//! two predictors racing on the same cold key may both compile. The loser
//! simply replaces the winner's identical entry — wasted work, never a
//! wrong answer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::plan::Plan;
use crate::quant::{Precision, QuantPlan};

/// Identity of the weights a plan was compiled from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanSource {
    /// Content hash of the checkpoint file the model was loaded from.
    /// Plans compiled from byte-identical files are interchangeable
    /// (identical weights ⇒ bitwise-identical outputs), so they share.
    Content(u64),
    /// Process-unique id for models that did not come from a file; such
    /// predictors never share plans with anyone else.
    Unique(u64),
}

impl PlanSource {
    /// A fresh never-shared identity.
    pub fn unique() -> PlanSource {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        PlanSource::Unique(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// Numeric flavour of a cached plan — the key axis that keeps an int8
/// plan and an f32 plan for the same checkpoint+shape distinct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PlanPrecision {
    /// The bitwise-faithful f32 plan.
    #[default]
    F32,
    /// int8 arena + int8 GEMM compute (f16/f32 islands where needed).
    Int8,
    /// binary16 arena, f32 compute.
    F16,
}

impl PlanPrecision {
    /// Stable lower-case name (metrics labels, `model-info`).
    pub fn name(self) -> &'static str {
        match self {
            PlanPrecision::F32 => "f32",
            PlanPrecision::Int8 => "int8",
            PlanPrecision::F16 => "f16",
        }
    }
}

impl From<Precision> for PlanPrecision {
    fn from(p: Precision) -> PlanPrecision {
        match p {
            Precision::Int8 => PlanPrecision::Int8,
            Precision::F16 => PlanPrecision::F16,
        }
    }
}

/// Cache key: weight identity, the exact `[N, C, H, W]` input shape the
/// plan was specialized for (batch-bucketed by the caller), the plan
/// precision, and whether BN folding rewrote the weights.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Weight identity (content hash or unique nonce).
    pub source: PlanSource,
    /// Input shape the plan is specialized for.
    pub shape: Vec<usize>,
    /// Numeric flavour of the cached plan.
    pub precision: PlanPrecision,
    /// Whether the plan was compiled with `fold_bn` (folding changes
    /// weight values, so folded plans never substitute for unfolded
    /// ones — at any precision).
    pub folded: bool,
}

impl PlanKey {
    /// Key for an f32 plan.
    pub fn f32(source: PlanSource, shape: Vec<usize>, folded: bool) -> PlanKey {
        PlanKey {
            source,
            shape,
            precision: PlanPrecision::F32,
            folded,
        }
    }

    /// Key for a quantized plan of the given precision.
    pub fn quant(
        source: PlanSource,
        shape: Vec<usize>,
        precision: Precision,
        folded: bool,
    ) -> PlanKey {
        PlanKey {
            source,
            shape,
            precision: precision.into(),
            folded,
        }
    }
}

/// A snapshot of the cache counters, for `/metrics` and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Live entries.
    pub entries: usize,
    /// Bytes currently charged (arena + weights + metadata per entry).
    pub bytes: usize,
    /// The configured budget.
    pub max_bytes: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (each typically followed by an insert).
    pub misses: u64,
    /// Entries evicted to hold the byte budget.
    pub evictions: u64,
}

/// One cached compiled program, either flavour.
#[derive(Clone)]
enum CachedPlan {
    F32(Arc<Plan>),
    Quant(Arc<QuantPlan>),
}

struct Entry {
    plan: CachedPlan,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<PlanKey, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The shared, byte-bounded LRU plan cache. Cheap to clone via `Arc`;
/// every method takes `&self`.
pub struct PlanCache {
    max_bytes: usize,
    inner: Mutex<Inner>,
}

/// Default budget when `MFAPLACE_PLAN_CACHE_MB` is unset: 256 MiB.
pub const DEFAULT_PLAN_CACHE_BYTES: usize = 256 << 20;

/// Bytes an entry is charged: arena + weight tables (for quantized plans
/// `weight_bytes` already includes the int8 weight copies) + metadata.
fn plan_bytes(plan: &CachedPlan) -> usize {
    match plan {
        CachedPlan::F32(p) => {
            let s = p.stats();
            s.arena_bytes + s.weight_bytes + p.metadata_bytes()
        }
        CachedPlan::Quant(q) => {
            let s = q.stats();
            s.arena_bytes + s.weight_bytes + q.metadata_bytes()
        }
    }
}

impl PlanCache {
    /// Creates a cache holding at most `max_bytes` of plan arena, weight
    /// and metadata bytes (a budget of 0 still admits one entry at a
    /// time).
    pub fn new(max_bytes: usize) -> PlanCache {
        PlanCache {
            max_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Creates a cache sized by the `MFAPLACE_PLAN_CACHE_MB` environment
    /// variable (MiB), defaulting to [`DEFAULT_PLAN_CACHE_BYTES`].
    pub fn from_env() -> PlanCache {
        let max = std::env::var("MFAPLACE_PLAN_CACHE_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(DEFAULT_PLAN_CACHE_BYTES, |mb| mb << 20);
        PlanCache::new(max)
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get_entry(&self, key: &PlanKey) -> Option<CachedPlan> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                inner.hits += 1;
                Some(plan)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn insert_entry(&self, key: PlanKey, plan: CachedPlan) {
        let bytes = plan_bytes(&plan);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(
            key.clone(),
            Entry {
                plan,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.bytes > self.max_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(evicted) = inner.entries.remove(&victim) {
                inner.bytes -= evicted.bytes;
                inner.evictions += 1;
            }
        }
    }

    /// Looks up an f32 plan, bumping its recency and the hit/miss
    /// counters. A key resolving to a quantized entry returns `None`
    /// (callers always construct keys with the matching precision, so
    /// this is a key-construction bug, not a runtime state).
    pub fn get(&self, key: &PlanKey) -> Option<Arc<Plan>> {
        match self.get_entry(key)? {
            CachedPlan::F32(p) => Some(p),
            CachedPlan::Quant(_) => None,
        }
    }

    /// Looks up a quantized plan, bumping recency and counters.
    pub fn get_quant(&self, key: &PlanKey) -> Option<Arc<QuantPlan>> {
        match self.get_entry(key)? {
            CachedPlan::Quant(q) => Some(q),
            CachedPlan::F32(_) => None,
        }
    }

    /// Whether `key` is cached, without touching recency or counters.
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.lock().entries.contains_key(key)
    }

    /// Inserts (or replaces) the f32 plan for `key`, then evicts
    /// least-recently-used entries — never the one just inserted — until
    /// the byte budget holds or only one entry remains.
    pub fn insert(&self, key: PlanKey, plan: Arc<Plan>) {
        self.insert_entry(key, CachedPlan::F32(plan));
    }

    /// [`PlanCache::insert`] for a quantized plan.
    pub fn insert_quant(&self, key: PlanKey, plan: Arc<QuantPlan>) {
        self.insert_entry(key, CachedPlan::Quant(plan));
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            entries: inner.entries.len(),
            bytes: inner.bytes,
            max_bytes: self.max_bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanOptions;
    use crate::quant::{Calibration, QuantOptions};
    use mfaplace_autograd::Graph;
    use mfaplace_tensor::Tensor;

    /// A minimal real plan (1x1 conv + relu) whose byte size we can read
    /// back from its stats.
    fn tiny_plan(weight: f32) -> Arc<Plan> {
        let mut g = Graph::new();
        g.set_grad_enabled(false);
        let w = g.param(Tensor::from_vec(vec![1, 1, 1, 1], vec![weight]).unwrap());
        let mark = g.mark();
        let x = g.constant(Tensor::zeros(vec![1, 1, 2, 2]));
        let y = g.conv2d(x, w, 1, 0);
        let y = g.relu(y);
        Arc::new(Plan::capture(&g, mark, x, y, PlanOptions::default()).unwrap())
    }

    fn quantize(plan: &Arc<Plan>) -> Arc<QuantPlan> {
        let input = vec![0.5f32, -1.0, 0.25, 0.75];
        let calib = Calibration::collect(plan, [input.as_slice()]).unwrap();
        Arc::new(QuantPlan::build(plan.clone(), &calib, QuantOptions::default()).unwrap())
    }

    fn key(source: PlanSource, n: usize) -> PlanKey {
        PlanKey::f32(source, vec![n, 1, 2, 2], false)
    }

    fn qkey(source: PlanSource, n: usize) -> PlanKey {
        PlanKey::quant(source, vec![n, 1, 2, 2], Precision::Int8, false)
    }

    #[test]
    fn hit_miss_and_sharing_by_key() {
        let cache = PlanCache::new(usize::MAX);
        let src = PlanSource::Content(42);
        assert!(cache.get(&key(src, 1)).is_none());
        cache.insert(key(src, 1), tiny_plan(2.0));
        assert!(cache.get(&key(src, 1)).is_some());
        // Different shape and different source both miss.
        assert!(cache.get(&key(src, 2)).is_none());
        assert!(cache.get(&key(PlanSource::Content(43), 1)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 3, 1));
    }

    #[test]
    fn precision_and_fold_are_key_axes() {
        let cache = PlanCache::new(usize::MAX);
        let src = PlanSource::Content(7);
        let plan = tiny_plan(1.5);
        cache.insert(key(src, 1), plan.clone());
        // Same content hash + shape, different precision: distinct entry.
        assert!(cache.get_quant(&qkey(src, 1)).is_none());
        cache.insert_quant(qkey(src, 1), quantize(&plan));
        assert!(cache.get_quant(&qkey(src, 1)).is_some());
        assert!(cache.get(&key(src, 1)).is_some(), "f32 entry untouched");
        // A folded key never resolves to the unfolded plan.
        assert!(cache
            .get(&PlanKey::f32(src, vec![1, 1, 2, 2], true))
            .is_none());
        // Precision-mismatched accessors refuse to cross-return.
        assert!(cache.get(&qkey(src, 1)).is_none());
        assert!(cache.get_quant(&key(src, 1)).is_none());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn quant_entries_are_charged_their_own_arena_bytes() {
        // The 64-byte span granularity makes a *toy* plan's quant arena
        // bigger than its 48-byte f32 arena; the ≤0.5× shrink contract is
        // asserted at real model sizes by the quant tolerance suite. Here
        // we check the cache charges exactly what the quant plan reports.
        let cache = PlanCache::new(usize::MAX);
        let src = PlanSource::Content(9);
        let plan = tiny_plan(2.5);
        let qplan = quantize(&plan);
        cache.insert(key(src, 1), plan.clone());
        let f32_bytes = cache.stats().bytes;
        cache.insert_quant(qkey(src, 1), qplan.clone());
        let both_bytes = cache.stats().bytes;
        let qs = qplan.stats();
        let expected_q = qs.arena_bytes + qs.weight_bytes + qplan.metadata_bytes();
        assert_eq!(both_bytes - f32_bytes, expected_q);
    }

    #[test]
    fn bytes_include_plan_metadata() {
        let cache = PlanCache::new(usize::MAX);
        let plan = tiny_plan(1.0);
        cache.insert(key(PlanSource::Content(1), 1), plan.clone());
        let s = plan.stats();
        assert_eq!(
            cache.stats().bytes,
            s.arena_bytes + s.weight_bytes + plan.metadata_bytes()
        );
        assert!(plan.metadata_bytes() > 0);
    }

    #[test]
    fn lru_eviction_respects_recency_and_keeps_newest() {
        let plan = tiny_plan(1.0);
        let per = plan.stats().arena_bytes + plan.stats().weight_bytes + plan.metadata_bytes();
        assert!(per > 0);
        // Room for exactly two entries.
        let cache = PlanCache::new(2 * per);
        let src = PlanSource::unique();
        cache.insert(key(src, 1), plan.clone());
        cache.insert(key(src, 2), tiny_plan(2.0));
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(cache.get(&key(src, 1)).is_some());
        cache.insert(key(src, 4), tiny_plan(4.0));
        assert!(cache.contains(&key(src, 1)), "recently used must survive");
        assert!(!cache.contains(&key(src, 2)), "LRU entry must be evicted");
        assert!(cache.contains(&key(src, 4)), "newest is never evicted");
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.max_bytes);

        // A budget smaller than one entry still admits exactly one.
        let starved = PlanCache::new(1);
        starved.insert(key(src, 1), tiny_plan(1.0));
        starved.insert(key(src, 2), tiny_plan(2.0));
        let s = starved.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 1);
        assert!(starved.contains(&key(src, 2)));
    }

    #[test]
    fn mixed_precision_lru_evicts_either_flavour() {
        let plan = tiny_plan(3.0);
        let qplan = quantize(&plan);
        let fb = plan.stats().arena_bytes + plan.stats().weight_bytes + plan.metadata_bytes();
        let qb = qplan.stats().arena_bytes + qplan.stats().weight_bytes + qplan.metadata_bytes();
        let src = PlanSource::unique();
        // Budget fits the f32 plan + quant plan, nothing more.
        let cache = PlanCache::new(fb + qb);
        cache.insert(key(src, 1), plan.clone());
        cache.insert_quant(qkey(src, 1), qplan.clone());
        // Touch the quant entry, then over-fill: the f32 plan is LRU.
        assert!(cache.get_quant(&qkey(src, 1)).is_some());
        cache.insert(key(src, 2), tiny_plan(4.0));
        assert!(!cache.contains(&key(src, 1)), "f32 LRU entry evicted");
        assert!(cache.contains(&qkey(src, 1)), "quant entry survives");
    }

    #[test]
    fn unique_sources_never_collide() {
        let a = PlanSource::unique();
        let b = PlanSource::unique();
        assert_ne!(a, b);
    }
}
