//! A process-wide, byte-bounded LRU cache of compiled [`Plan`]s.
//!
//! The serve layer's model fleet loads N checkpoints, and each predictor
//! compiles one plan per (bucketed) input shape. Without sharing, two
//! slots loaded from the *same* checkpoint file would compile and hold two
//! identical plan sets — duplicated op lists and, much worse, duplicated
//! weight snapshots. [`PlanCache`] fixes both:
//!
//! - **Keying** — a [`PlanKey`] is `(weight identity, input shape)`. The
//!   weight identity is the checkpoint file's *content hash*
//!   ([`PlanSource::Content`]) for file-loaded predictors, so any two
//!   predictors rebuilt from byte-identical checkpoints resolve to the
//!   same entries, regardless of path or load order. In-memory models
//!   (trainers, tests) get a process-unique nonce ([`PlanSource::unique`])
//!   and therefore never share.
//! - **Byte bounding** — every entry is charged its arena + weight-table
//!   bytes; inserts evict least-recently-used entries until the budget
//!   holds again. The newest entry is never evicted, so a single plan
//!   larger than the whole budget still serves (the cache is then
//!   temporarily over budget by that one entry). Weight tables shared
//!   across entries via `Arc` are charged once per entry — a deliberate
//!   overcount that keeps the bound conservative.
//! - **Observability** — [`PlanCache::stats`] reports entries, bytes,
//!   hits, misses and evictions; the serve layer republishes them as
//!   `mfaplace_plan_cache_*` gauges on every `/metrics` scrape.
//!
//! Lookups and inserts are `Mutex`-serialized; compilation itself must
//! happen *outside* the lock (callers do `get` → capture → `insert`), so
//! two predictors racing on the same cold key may both compile. The loser
//! simply replaces the winner's identical entry — wasted work, never a
//! wrong answer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::plan::Plan;

/// Identity of the weights a plan was compiled from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanSource {
    /// Content hash of the checkpoint file the model was loaded from.
    /// Plans compiled from byte-identical files are interchangeable
    /// (identical weights ⇒ bitwise-identical outputs), so they share.
    Content(u64),
    /// Process-unique id for models that did not come from a file; such
    /// predictors never share plans with anyone else.
    Unique(u64),
}

impl PlanSource {
    /// A fresh never-shared identity.
    pub fn unique() -> PlanSource {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        PlanSource::Unique(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// Cache key: weight identity plus the exact `[N, C, H, W]` input shape
/// the plan was specialized for (batch-bucketed by the caller).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Weight identity (content hash or unique nonce).
    pub source: PlanSource,
    /// Input shape the plan is specialized for.
    pub shape: Vec<usize>,
}

/// A snapshot of the cache counters, for `/metrics` and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Live entries.
    pub entries: usize,
    /// Bytes currently charged (arena + weight table per entry).
    pub bytes: usize,
    /// The configured budget.
    pub max_bytes: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (each typically followed by an insert).
    pub misses: u64,
    /// Entries evicted to hold the byte budget.
    pub evictions: u64,
}

struct Entry {
    plan: Arc<Plan>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<PlanKey, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The shared, byte-bounded LRU plan cache. Cheap to clone via `Arc`;
/// every method takes `&self`.
pub struct PlanCache {
    max_bytes: usize,
    inner: Mutex<Inner>,
}

/// Default budget when `MFAPLACE_PLAN_CACHE_MB` is unset: 256 MiB.
pub const DEFAULT_PLAN_CACHE_BYTES: usize = 256 << 20;

impl PlanCache {
    /// Creates a cache holding at most `max_bytes` of plan arena + weight
    /// bytes (a budget of 0 still admits one entry at a time).
    pub fn new(max_bytes: usize) -> PlanCache {
        PlanCache {
            max_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Creates a cache sized by the `MFAPLACE_PLAN_CACHE_MB` environment
    /// variable (MiB), defaulting to [`DEFAULT_PLAN_CACHE_BYTES`].
    pub fn from_env() -> PlanCache {
        let max = std::env::var("MFAPLACE_PLAN_CACHE_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(DEFAULT_PLAN_CACHE_BYTES, |mb| mb << 20);
        PlanCache::new(max)
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks `key` up, bumping its recency and the hit/miss counters.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<Plan>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                inner.hits += 1;
                Some(plan)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is cached, without touching recency or counters.
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.lock().entries.contains_key(key)
    }

    /// Inserts (or replaces) the plan for `key`, then evicts
    /// least-recently-used entries — never the one just inserted — until
    /// the byte budget holds or only one entry remains.
    pub fn insert(&self, key: PlanKey, plan: Arc<Plan>) {
        let stats = plan.stats();
        let bytes = stats.arena_bytes + stats.weight_bytes;
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(
            key.clone(),
            Entry {
                plan,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.bytes > self.max_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(evicted) = inner.entries.remove(&victim) {
                inner.bytes -= evicted.bytes;
                inner.evictions += 1;
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            entries: inner.entries.len(),
            bytes: inner.bytes,
            max_bytes: self.max_bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanOptions;
    use mfaplace_autograd::Graph;
    use mfaplace_tensor::Tensor;

    /// A minimal real plan (1x1 conv + relu) whose byte size we can read
    /// back from its stats.
    fn tiny_plan(weight: f32) -> Arc<Plan> {
        let mut g = Graph::new();
        g.set_grad_enabled(false);
        let w = g.param(Tensor::from_vec(vec![1, 1, 1, 1], vec![weight]).unwrap());
        let mark = g.mark();
        let x = g.constant(Tensor::zeros(vec![1, 1, 2, 2]));
        let y = g.conv2d(x, w, 1, 0);
        let y = g.relu(y);
        Arc::new(Plan::capture(&g, mark, x, y, PlanOptions::default()).unwrap())
    }

    fn key(source: PlanSource, n: usize) -> PlanKey {
        PlanKey {
            source,
            shape: vec![n, 1, 2, 2],
        }
    }

    #[test]
    fn hit_miss_and_sharing_by_key() {
        let cache = PlanCache::new(usize::MAX);
        let src = PlanSource::Content(42);
        assert!(cache.get(&key(src, 1)).is_none());
        cache.insert(key(src, 1), tiny_plan(2.0));
        assert!(cache.get(&key(src, 1)).is_some());
        // Different shape and different source both miss.
        assert!(cache.get(&key(src, 2)).is_none());
        assert!(cache.get(&key(PlanSource::Content(43), 1)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 3, 1));
    }

    #[test]
    fn lru_eviction_respects_recency_and_keeps_newest() {
        let plan = tiny_plan(1.0);
        let per = plan.stats().arena_bytes + plan.stats().weight_bytes;
        assert!(per > 0);
        // Room for exactly two entries.
        let cache = PlanCache::new(2 * per);
        let src = PlanSource::unique();
        cache.insert(key(src, 1), plan.clone());
        cache.insert(key(src, 2), tiny_plan(2.0));
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(cache.get(&key(src, 1)).is_some());
        cache.insert(key(src, 4), tiny_plan(4.0));
        assert!(cache.contains(&key(src, 1)), "recently used must survive");
        assert!(!cache.contains(&key(src, 2)), "LRU entry must be evicted");
        assert!(cache.contains(&key(src, 4)), "newest is never evicted");
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.max_bytes);

        // A budget smaller than one entry still admits exactly one.
        let starved = PlanCache::new(1);
        starved.insert(key(src, 1), tiny_plan(1.0));
        starved.insert(key(src, 2), tiny_plan(2.0));
        let s = starved.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 1);
        assert!(starved.contains(&key(src, 2)));
    }

    #[test]
    fn unique_sources_never_collide() {
        let a = PlanSource::unique();
        let b = PlanSource::unique();
        assert_ne!(a, b);
    }
}
