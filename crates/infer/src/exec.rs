//! The plan executor: runs a compiled [`Plan`] with zero per-forward heap
//! allocations, writing every intermediate into the pre-sized arena.
//!
//! # Bitwise contract
//!
//! Every op either calls the *same* kernel code the tape forward calls
//! (GEMM family, fused attention, im2col — via `mfaplace_tensor::lowlevel`
//! and the `*_slices` attention entry points) or replicates the tape's
//! per-element arithmetic expression exactly (activations, normalization,
//! bias adds — pure per-element ops are bitwise-safe under any loop
//! partitioning as long as the arithmetic sequence per element is
//! identical). The equivalence suite asserts bit equality against the tape
//! for every zoo architecture.
//!
//! # Allocation contract
//!
//! `run_batch` performs no heap allocation: outputs and op-local scratch
//! (conv lowering buffers, attention score rows) live at plan-assigned
//! arena offsets. The one documented exception matches the tape path:
//! when an attention call is large enough to take the parallel tile path,
//! each worker allocates its private score row (identical behaviour and
//! threshold as the tape kernel, so tape-vs-plan comparisons stay fair).
//!
//! # Parallel level scheduling
//!
//! The plan's steps are stored level-major: each level is a wave of
//! mutually independent ops whose write spans are pairwise disjoint (see
//! `assign_arena` / `verify_levels` in `plan.rs`). With `workers > 1`,
//! [`run_plan_workers`] executes each level's ops concurrently on the
//! `mfaplace-rt` pool; because every op writes its own disjoint span and
//! each kernel is deterministic at any worker count, the result is
//! **bitwise identical** to serial replay — there is no reduction across
//! ops, so no merge-order hazard exists. The worker count defaults to
//! `MFAPLACE_PLAN_WORKERS` (falling back to the pool's thread budget).
//!
//! # Safety
//!
//! Ops borrow disjoint arena spans mutably and immutably at once through
//! raw pointers. Soundness rests on the allocator invariant (an op's
//! output/scratch spans never overlap a live operand span, and same-level
//! ops never write each other's read or write spans — see
//! `assign_arena`), which is verified at capture time and re-checked per
//! op in debug builds.

use std::sync::Arc;

use mfaplace_autograd::gelu_fwd;
use mfaplace_rt::pool;
use mfaplace_rt::timer::ScopeTimer;
use mfaplace_tensor::{layer_norm_rows, lowlevel, softmax_row};

#[cfg(debug_assertions)]
use crate::plan::for_each_operand;
use crate::plan::{ArenaRange, BmmKind, IrOp, Loc, Plan, Step, ValId};

/// Resolves the plan-executor worker count from `MFAPLACE_PLAN_WORKERS`.
///
/// Unset (or unparsable/zero) falls back to the runtime pool's thread
/// budget (`MFAPLACE_THREADS` / available parallelism), so a single-core
/// host stays on the serial path with zero overhead; `=1` forces serial
/// replay explicitly.
pub fn plan_workers_from_env() -> usize {
    plan_workers_from_str(std::env::var("MFAPLACE_PLAN_WORKERS").ok().as_deref())
}

/// [`plan_workers_from_env`] over an explicit value, for tests and CLI.
pub fn plan_workers_from_str(v: Option<&str>) -> usize {
    match v.map(str::trim).and_then(|s| s.parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => pool::max_threads(),
    }
}

/// Owns the mutable state (activation arena) needed to run a [`Plan`].
///
/// The plan itself is held through an `Arc`, so many executors (or a
/// shared [`crate::PlanCache`]) can reference one compiled plan while each
/// keeps its own private arena.
#[derive(Debug)]
pub struct PlanExecutor {
    plan: Arc<Plan>,
    arena: Vec<f32>,
    runs: u64,
    workers: usize,
}

impl PlanExecutor {
    /// Builds an executor, allocating the arena once up front. Accepts a
    /// bare `Plan` or an `Arc<Plan>` (e.g. out of a [`crate::PlanCache`]).
    /// The level-scheduler worker count comes from
    /// [`plan_workers_from_env`]; override it with
    /// [`PlanExecutor::set_workers`].
    pub fn new(plan: impl Into<Arc<Plan>>) -> PlanExecutor {
        let plan = plan.into();
        let arena = vec![0.0f32; plan.arena_len()];
        PlanExecutor {
            plan,
            arena,
            runs: 0,
            workers: plan_workers_from_env(),
        }
    }

    /// Sets the number of workers used for intra-plan level execution
    /// (`1` = serial replay). Outputs are bitwise identical either way.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured level-scheduler worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The compiled plan this executor runs.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Number of completed forwards.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Arena base address — exposed so tests can assert the buffer is
    /// reused (stable) across forwards rather than reallocated.
    pub fn arena_ptr(&self) -> *const f32 {
        self.arena.as_ptr()
    }

    /// Runs one forward over `input` (row-major, must match the captured
    /// input shape) and returns the output slice, valid until the next
    /// call. Allocation-free: every write lands in the arena.
    pub fn run_batch(&mut self, input: &[f32]) -> &[f32] {
        self.runs += 1;
        run_plan_workers(&self.plan, &mut self.arena, input, self.workers)
    }
}

/// Runs one forward of `plan` over `input` using `arena` for every
/// intermediate, growing (never shrinking) the arena to the plan's
/// requirement first. Returns the output slice, valid until the arena is
/// next written.
///
/// This is the executor's run loop exposed over caller-owned storage, so
/// one arena can be reused across *different* plans (the predictor keeps
/// one arena per model while plans live in a shared cache). Safe because
/// every plan op either fully overwrites its destination span or
/// explicitly clears it first — stale data from a previous plan is never
/// observable.
pub fn run_plan<'a>(plan: &Plan, arena: &'a mut Vec<f32>, input: &[f32]) -> &'a [f32] {
    run_plan_workers(plan, arena, input, 1)
}

/// [`run_plan`] with an explicit level-scheduler worker count: levels of
/// mutually independent ops execute concurrently on the `mfaplace-rt`
/// pool (contiguous op-index blocks per worker), bitwise identical to
/// serial replay because same-level ops write pairwise-disjoint arena
/// spans and every kernel is deterministic at any worker count.
pub fn run_plan_workers<'a>(
    plan: &Plan,
    arena: &'a mut Vec<f32>,
    input: &[f32],
    workers: usize,
) -> &'a [f32] {
    assert_eq!(
        input.len(),
        plan.input_numel(),
        "plan input length mismatch (plan compiled for shape {:?})",
        plan.input_shape(),
    );
    if arena.len() < plan.arena_len() {
        arena.resize(plan.arena_len(), 0.0);
    }
    let base = arena.as_mut_ptr();
    if workers <= 1 {
        for step in &plan.steps {
            #[cfg(debug_assertions)]
            check_disjoint(plan, step);
            exec_step(plan, input, base, step);
        }
    } else {
        for range in &plan.levels {
            let steps = &plan.steps[range.clone()];
            #[cfg(debug_assertions)]
            for step in steps {
                check_disjoint(plan, step);
            }
            if steps.len() == 1 {
                exec_step(plan, input, base, &steps[0]);
                continue;
            }
            let _lvl = ScopeTimer::new("core/forward_plan_level");
            let nt = workers.min(steps.len());
            // Split the host's thread budget between op-level concurrency
            // and each kernel's own intra-op parallelism (thread overrides
            // are per-thread, so spawned workers start uncapped).
            let inner = (pool::max_threads() / nt).max(1);
            let shared = ArenaBase(base);
            let shared = &shared;
            pool::with_threads(nt, || {
                pool::parallel_for(steps.len(), |r| {
                    let base = shared.0;
                    pool::with_threads(inner, || {
                        for i in r {
                            exec_step(plan, input, base, &steps[i]);
                        }
                    });
                });
            });
        }
    }
    mfaplace_rt::timer::count("infer/plan_forwards", 1);
    let Loc::Arena { off, len } = plan.values[plan.output].loc else {
        unreachable!("plan output is always arena-resident");
    };
    &arena[off..off + len]
}

/// The arena base pointer, shared across a level's workers.
///
/// Sound to send/share because the level scheduler guarantees every
/// concurrently executing op writes a pairwise-disjoint span (verified at
/// capture time by `verify_levels`).
struct ArenaBase(*mut f32);
unsafe impl Send for ArenaBase {}
unsafe impl Sync for ArenaBase {}

/// Immutable view of a plan value.
///
/// # Safety
///
/// For arena values the returned slice aliases `base`; the caller must not
/// hold a mutable span overlapping it (guaranteed by `assign_arena`).
unsafe fn src<'a>(plan: &'a Plan, input: &'a [f32], base: *const f32, v: ValId) -> &'a [f32] {
    match plan.values[v].loc {
        Loc::Input => input,
        Loc::Weight(i) => plan.weights[i].data(),
        Loc::Arena { off, len } => std::slice::from_raw_parts(base.add(off), len),
        Loc::Unassigned => unreachable!("read of a fused-away value"),
    }
}

/// Mutable view of an arena span.
///
/// # Safety
///
/// The span must be disjoint from every other span borrowed for the same
/// op (allocator invariant, debug-asserted by `check_disjoint`).
unsafe fn span_mut<'a>(base: *mut f32, r: ArenaRange) -> &'a mut [f32] {
    std::slice::from_raw_parts_mut(base.add(r.off), r.len)
}

/// Debug re-check of the allocator invariant: the op's output and scratch
/// spans overlap neither each other nor any operand span.
#[cfg(debug_assertions)]
fn check_disjoint(plan: &Plan, step: &Step) {
    let mut writes: Vec<(usize, usize)> = Vec::new();
    if let Loc::Arena { off, len } = plan.values[step.out].loc {
        writes.push((off, len));
    }
    match &step.op {
        IrOp::Conv2d { cols, ymat, .. } => {
            writes.push((cols.off, cols.len));
            writes.push((ymat.off, ymat.len));
        }
        IrOp::AttentionTm { scratch, .. } | IrOp::AttentionFm { scratch, .. } => {
            writes.push((scratch.off, scratch.len));
        }
        _ => {}
    }
    let overlap = |a: (usize, usize), b: (usize, usize)| a.0 < b.0 + b.1 && b.0 < a.0 + a.1;
    for (i, &wa) in writes.iter().enumerate() {
        for &wb in &writes[i + 1..] {
            assert!(!overlap(wa, wb), "write spans overlap in step {step:?}");
        }
    }
    for_each_operand(&step.op, &mut |v| {
        if let Loc::Arena { off, len } = plan.values[v].loc {
            for &w in &writes {
                assert!(
                    !overlap(w, (off, len)),
                    "operand span overlaps a write span in step {step:?}"
                );
            }
        }
    });
}

/// Serial replay of `plan` that calls `observe(step_index, out_slice)`
/// after each step — the quantization calibrator's hook for collecting
/// per-value activation ranges. Identical arithmetic to [`run_plan`]
/// (same `exec_step` calls in the same order); the observer only reads.
pub(crate) fn run_plan_observed<'a>(
    plan: &Plan,
    arena: &'a mut Vec<f32>,
    input: &[f32],
    observe: &mut dyn FnMut(usize, &[f32]),
) -> &'a [f32] {
    assert_eq!(
        input.len(),
        plan.input_numel(),
        "plan input length mismatch (plan compiled for shape {:?})",
        plan.input_shape(),
    );
    if arena.len() < plan.arena_len() {
        arena.resize(plan.arena_len(), 0.0);
    }
    let base = arena.as_mut_ptr();
    for (i, step) in plan.steps.iter().enumerate() {
        #[cfg(debug_assertions)]
        check_disjoint(plan, step);
        exec_step(plan, input, base, step);
        if let Loc::Arena { off, len } = plan.values[step.out].loc {
            // SAFETY: the step finished; its output span is initialized
            // and no mutable borrow of the arena is live.
            observe(i, unsafe { std::slice::from_raw_parts(base.add(off), len) });
        }
    }
    let Loc::Arena { off, len } = plan.values[plan.output].loc else {
        unreachable!("plan output is always arena-resident");
    };
    &arena[off..off + len]
}

/// Op-local scratch views an [`exec_op`] call may need beyond its
/// destination: the conv im2col/GEMM buffers and the attention score row.
/// The f32 executor carves these from plan-assigned arena spans; the
/// quantized executor carves them from its shared per-step scratch region.
#[derive(Default)]
pub(crate) struct OpScratch<'a> {
    pub cols: Option<&'a mut [f32]>,
    pub ymat: Option<&'a mut [f32]>,
    pub att: Option<&'a mut [f32]>,
}

/// Executes one step. `base` points at the executor's arena.
fn exec_step(plan: &Plan, input: &[f32], base: *mut f32, step: &Step) {
    // SAFETY: all spans handed out below are either weight/input borrows or
    // arena spans that `assign_arena` guarantees disjoint for this op; the
    // debug assertion above re-checks the invariant.
    let s = |v: ValId| unsafe { src(plan, input, base, v) };
    let dst: &mut [f32] = {
        let Loc::Arena { off, len } = plan.values[step.out].loc else {
            unreachable!("step outputs are always arena-resident");
        };
        unsafe { span_mut(base, ArenaRange { off, len }) }
    };
    let scratch = match &step.op {
        IrOp::Conv2d { cols, ymat, .. } => OpScratch {
            cols: Some(unsafe { span_mut(base, *cols) }),
            ymat: Some(unsafe { span_mut(base, *ymat) }),
            att: None,
        },
        IrOp::AttentionTm { scratch, .. } | IrOp::AttentionFm { scratch, .. } => OpScratch {
            att: Some(unsafe { span_mut(base, *scratch) }),
            ..OpScratch::default()
        },
        _ => OpScratch::default(),
    };
    exec_op(&step.op, &s, dst, scratch);
}

/// Executes one op's f32 arithmetic against caller-resolved operand views.
///
/// This is the single source of the per-op reference semantics: the f32
/// executor calls it with arena-resident views (keeping the bitwise
/// plan==tape contract — the arithmetic below is untouched by the
/// factoring), and the quantized executor calls it for every op that runs
/// on the f32 fallback path, with operands dequantized into scratch.
pub(crate) fn exec_op<'a>(
    op: &IrOp,
    s: &impl Fn(ValId) -> &'a [f32],
    dst: &mut [f32],
    scratch: OpScratch<'_>,
) {
    match op {
        IrOp::Conv2d {
            x,
            w,
            bias,
            affine,
            relu,
            stride,
            pad,
            b,
            c,
            h,
            w_in,
            kh,
            kw,
            oc,
            oh,
            ow,
            ..
        } => {
            let xs = s(*x);
            let ws = s(*w);
            let cols_m = scratch.cols.expect("conv cols scratch");
            // The arena span may hold a dead value from an earlier op;
            // im2col relies on zeroed padding cells, so clear every run.
            cols_m.fill(0.0);
            lowlevel::im2col_into(xs, *b, *c, *h, *w_in, *kh, *kw, *stride, *pad, cols_m);
            let ymat_m = scratch.ymat.expect("conv ymat scratch");
            lowlevel::gemm_into(ws, &*cols_m, ymat_m, *oc, *c * *kh * *kw, *b * *oh * *ow);
            let bias_s = bias.map(s);
            let aff = affine
                .as_ref()
                .map(|(sc, sh)| (sc.as_slice(), sh.as_slice()));
            lowlevel::conv_reorder_epilogue(&*ymat_m, dst, *b, *oc, *oh * *ow, bias_s, aff, *relu);
        }
        IrOp::AddBiasChannel { x, bias, b, c, hw } => {
            let xs = s(*x);
            let bv = s(*bias);
            for bi in 0..*b {
                for (ci, &add) in bv.iter().enumerate().take(*c) {
                    let base_i = (bi * c + ci) * hw;
                    for (o, &xv) in dst[base_i..base_i + hw]
                        .iter_mut()
                        .zip(&xs[base_i..base_i + hw])
                    {
                        *o = xv + add;
                    }
                }
            }
        }
        IrOp::AddBiasRow { x, bias, d } => {
            let xs = s(*x);
            let bv = s(*bias);
            for (row_o, row_x) in dst.chunks_mut(*d).zip(xs.chunks(*d)) {
                for ((o, &xv), &b) in row_o.iter_mut().zip(row_x).zip(bv) {
                    *o = xv + b;
                }
            }
        }
        IrOp::Add { a, b, relu } => {
            let (av, bv) = (s(*a), s(*b));
            if *relu {
                for ((o, &x), &y) in dst.iter_mut().zip(av).zip(bv) {
                    *o = (x + y).max(0.0);
                }
            } else {
                for ((o, &x), &y) in dst.iter_mut().zip(av).zip(bv) {
                    *o = x + y;
                }
            }
        }
        IrOp::Sub { a, b } => {
            let (av, bv) = (s(*a), s(*b));
            for ((o, &x), &y) in dst.iter_mut().zip(av).zip(bv) {
                *o = x - y;
            }
        }
        IrOp::Mul { a, b } => {
            let (av, bv) = (s(*a), s(*b));
            for ((o, &x), &y) in dst.iter_mut().zip(av).zip(bv) {
                *o = x * y;
            }
        }
        IrOp::Neg { x } => {
            for (o, &v) in dst.iter_mut().zip(s(*x)) {
                *o = -v;
            }
        }
        IrOp::Scale { x, c } => {
            for (o, &v) in dst.iter_mut().zip(s(*x)) {
                *o = v * c;
            }
        }
        IrOp::Relu { x } => {
            for (o, &v) in dst.iter_mut().zip(s(*x)) {
                *o = v.max(0.0);
            }
        }
        IrOp::LeakyRelu { x, slope } => {
            for (o, &v) in dst.iter_mut().zip(s(*x)) {
                *o = if v > 0.0 { v } else { slope * v };
            }
        }
        IrOp::Sigmoid { x } => {
            for (o, &v) in dst.iter_mut().zip(s(*x)) {
                *o = 1.0 / (1.0 + (-v).exp());
            }
        }
        IrOp::Gelu { x } => {
            for (o, &v) in dst.iter_mut().zip(s(*x)) {
                *o = gelu_fwd(v);
            }
        }
        IrOp::ChannelAffine {
            x,
            scale,
            shift,
            b,
            c,
            hw,
        } => {
            let xs = s(*x);
            for bi in 0..*b {
                for ci in 0..*c {
                    let base_i = (bi * c + ci) * hw;
                    let (sc, sh) = (scale[ci], shift[ci]);
                    for (o, &xv) in dst[base_i..base_i + hw]
                        .iter_mut()
                        .zip(&xs[base_i..base_i + hw])
                    {
                        *o = sc * xv + sh;
                    }
                }
            }
        }
        IrOp::LayerNorm {
            x,
            gamma,
            beta,
            eps,
            d,
        } => {
            // Same dispatched kernel the tape forward calls, so tape-vs-
            // plan stays bitwise under every kernel backend.
            layer_norm_rows(s(*x), s(*gamma), s(*beta), *eps, *d, dst, None, None);
        }
        IrOp::SoftmaxLast { x, d } => {
            dst.copy_from_slice(s(*x));
            for row in dst.chunks_mut(*d) {
                softmax_row(row);
            }
        }
        IrOp::Matmul { a, b, m, k, n } => {
            lowlevel::gemm_into(s(*a), s(*b), dst, *m, *k, *n);
        }
        IrOp::Bmm {
            kind,
            a,
            b,
            bt,
            m,
            k,
            n,
        } => {
            let (av, bv) = (s(*a), s(*b));
            match kind {
                BmmKind::Nn => lowlevel::bmm_into(av, bv, dst, *bt, *m, *k, *n),
                BmmKind::Nt => lowlevel::bmm_nt_into(av, bv, dst, *bt, *m, *k, *n),
                BmmKind::Tn => lowlevel::bmm_tn_into(av, bv, dst, *bt, *m, *k, *n),
            }
        }
        IrOp::AttentionTm {
            q,
            k,
            v,
            scale,
            b,
            lq,
            lk,
            d,
            dv,
            ..
        } => {
            // The fused kernel accumulates into a zeroed output (the tape
            // takes a zero-filled pool buffer).
            dst.fill(0.0);
            let sc = scratch.att.expect("attention score-row scratch");
            mfaplace_tensor::attention_tm_slices(
                s(*q),
                s(*k),
                s(*v),
                *b,
                *lq,
                *lk,
                *d,
                *dv,
                *scale,
                dst,
                sc,
            );
        }
        IrOp::AttentionFm {
            q,
            k,
            v,
            scale,
            b,
            n,
            nv,
            l,
            ..
        } => {
            let sc = scratch.att.expect("attention score-row scratch");
            mfaplace_tensor::attention_fm_slices(
                s(*q),
                s(*k),
                s(*v),
                *b,
                *n,
                *nv,
                *l,
                *scale,
                dst,
                sc,
            );
        }
        IrOp::Copy { x } => {
            dst.copy_from_slice(s(*x));
        }
        IrOp::Permute {
            x,
            stride_axes,
            out_dims,
        } => {
            let xs = s(*x);
            let rank = out_dims.len();
            let mut idx = [0usize; 8];
            // Same output-order walk as `Tensor::permute`, with the input
            // strides pre-gathered per output axis at compile time.
            for o in dst.iter_mut() {
                let mut off = 0usize;
                for d in 0..rank {
                    off += idx[d] * stride_axes[d];
                }
                *o = xs[off];
                for d in (0..rank).rev() {
                    idx[d] += 1;
                    if idx[d] < out_dims[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }
        IrOp::ConcatChannels {
            parts,
            part_c,
            b,
            hw,
            total_c,
        } => {
            for bi in 0..*b {
                let mut c_off = 0usize;
                for (&p, &pc) in parts.iter().zip(part_c) {
                    let ps = s(p);
                    dst[(bi * total_c + c_off) * hw..(bi * total_c + c_off + pc) * hw]
                        .copy_from_slice(&ps[bi * pc * hw..(bi + 1) * pc * hw]);
                    c_off += pc;
                }
            }
        }
        IrOp::SliceChannels {
            x,
            c0,
            c1,
            b,
            c,
            hw,
        } => {
            let xs = s(*x);
            let nc = c1 - c0;
            for bi in 0..*b {
                dst[bi * nc * hw..(bi + 1) * nc * hw]
                    .copy_from_slice(&xs[(bi * c + c0) * hw..(bi * c + c1) * hw]);
            }
        }
        IrOp::Upsample2x { x, planes, h, w } => {
            let xs = s(*x);
            for bc in 0..*planes {
                let plane = &mut dst[bc * 4 * h * w..(bc + 1) * 4 * h * w];
                for i in 0..*h {
                    for j in 0..*w {
                        let v = xs[bc * h * w + i * w + j];
                        for di in 0..2 {
                            for dj in 0..2 {
                                plane[(i * 2 + di) * 2 * w + (j * 2 + dj)] = v;
                            }
                        }
                    }
                }
            }
        }
        IrOp::MaxPool2x2 { x, planes, h, w } => {
            let xs = s(*x);
            let (oh, ow) = (h / 2, w / 2);
            for bc in 0..*planes {
                let in_base = bc * h * w;
                let plane = &mut dst[bc * oh * ow..(bc + 1) * oh * ow];
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for di in 0..2 {
                            for dj in 0..2 {
                                let v = xs[in_base + (oi * 2 + di) * w + (oj * 2 + dj)];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        plane[oi * ow + oj] = best;
                    }
                }
            }
        }
        IrOp::MulScalarVar { x, s: sv } => {
            let scalar = s(*sv)[0];
            for (o, &v) in dst.iter_mut().zip(s(*x)) {
                *o = v * scalar;
            }
        }
    }
}
