//! Plan compilation: tape capture, fusion passes, BN folding and the
//! liveness-packed activation arena.
//!
//! A [`Plan`] is compiled from **one** recording of a model forward on the
//! dynamic autograd tape ([`Graph::export_segment`]). Because every zoo
//! model's control flow depends only on input *shape* (never on input
//! *values*), a single recording at a given `[B, C, H, W]` is a faithful
//! static program for every batch of that shape.
//!
//! Compilation runs four passes over the exported segment:
//!
//! 1. **Lowering** — tape nodes become [`IrOp`]s with all shapes baked in;
//!    pre-mark operands (parameters) and mid-segment constants (e.g. the
//!    PGNN aggregation kernels) are snapshotted into a weight table of
//!    `Arc<Tensor>` (shared across per-batch-size plans via a caller cache).
//! 2. **Fusion** — a conv's single-consumer chain of
//!    `add_bias_channel → channel_affine → relu` collapses into the conv's
//!    epilogue (executed by `conv_reorder_epilogue`, whose per-element
//!    arithmetic is exactly the tape's op sequence, keeping outputs
//!    bitwise); `add → relu` pairs fuse the same way.
//! 3. **BN folding** (optional, [`PlanOptions::fold_bn`]) — a fused
//!    `channel_affine` epilogue is folded into the conv weight/bias through
//!    an f64 refold. This changes weight values, so it is off by default:
//!    the bitwise contract becomes a ≤1e-6 one.
//! 4. **Copy elision** — pure-reshape [`IrOp::Copy`] steps are rewritten
//!    into *aliases* of their source value: no op in the IR ever mutates an
//!    existing span, so a reshape output can share its source's storage as
//!    long as the liveness pass keeps the shared span alive until the last
//!    reader of **either** value (a write-after-read extension of the
//!    plain per-value liveness).
//! 5. **Level scheduling** — the op-level dependency DAG (an edge per
//!    operand definition, aliases resolved to their roots) is partitioned
//!    into topological levels: waves of mutually independent ops. Steps are
//!    reordered level-major (stable within a level), so serial replay is
//!    still a valid topological order and the executor can run any level's
//!    ops concurrently.
//! 6. **Arena assignment** — liveness intervals for every intermediate plus
//!    op-local scratch (conv im2col/GEMM buffers, attention score rows) are
//!    packed by a first-fit free list with coalescing into a single arena
//!    whose peak size is known at compile time. Spans are allocated and
//!    released at *level* granularity, so ops in the same level always hold
//!    pairwise-disjoint write spans (verified after the pass) — the
//!    property that makes parallel level execution bitwise identical to
//!    serial replay. The executor then runs every forward with zero heap
//!    allocations.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use mfaplace_autograd::{Graph, TapeOp, Var};
use mfaplace_tensor::{conv_out_size, strides_for, Tensor};

/// Compile-time options for [`Plan::capture`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanOptions {
    /// Fold the fused inference-mode batch-norm epilogue
    /// (`channel_affine`) into the preceding conv's weight and bias using
    /// f64 intermediate arithmetic. Saves one multiply-add per output
    /// element but changes weight values, so plan outputs are no longer
    /// bitwise identical to the tape — only within 1e-6 of the output
    /// scale in max-norm (asserted by the equivalence suite). Default
    /// **off** to preserve the bitwise contract.
    pub fold_bn: bool,
}

/// Counters describing a compiled plan, for `/metrics` and `model-info`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Executable ops after fusion.
    pub ops: usize,
    /// Bias adds absorbed into conv epilogues.
    pub fused_conv_bias: usize,
    /// Channel affines (inference BN) absorbed into conv epilogues.
    pub fused_conv_affine: usize,
    /// ReLUs absorbed into conv epilogues.
    pub fused_conv_relu: usize,
    /// `add → relu` pairs fused.
    pub fused_add_relu: usize,
    /// Conv weights rewritten by BN folding.
    pub folded_bn: usize,
    /// Activation arena size in bytes (peak, fixed at compile time).
    pub arena_bytes: usize,
    /// Weight-table tensors.
    pub weights: usize,
    /// Weight-table bytes (shared `Arc`s counted once per plan).
    pub weight_bytes: usize,
    /// Dependency-DAG levels (waves of mutually independent ops). Each
    /// level advances the longest dependency chain by exactly one op, so
    /// this is also the critical-path depth in ops.
    pub levels: usize,
    /// Ops in the widest level — the plan's maximum op-level parallelism.
    pub max_level_width: usize,
    /// Pure-reshape `Copy` steps elided into arena aliases.
    pub copies_elided: usize,
}

pub(crate) type ValId = usize;

/// Where a plan value lives at run time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Loc {
    /// The forward input slice passed to `run_batch`.
    Input,
    /// Index into the plan weight table.
    Weight(usize),
    /// `[off, off+len)` in the execution arena.
    Arena { off: usize, len: usize },
    /// Not yet placed (pre-arena pass) or fused away.
    Unassigned,
}

#[derive(Clone, Debug)]
pub(crate) struct ValueInfo {
    pub shape: Vec<usize>,
    pub numel: usize,
    pub loc: Loc,
}

/// An op-local scratch span in the arena (live only during its op).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ArenaRange {
    pub off: usize,
    pub len: usize,
}

/// Batched-GEMM transpose flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BmmKind {
    Nn,
    Nt,
    Tn,
}

/// One executable plan op, with all dims resolved at compile time.
///
/// Field-for-field these mirror the tape forwards in
/// `mfaplace_autograd::Graph`; the executor replicates the recorded
/// per-element arithmetic exactly (see `exec.rs`).
#[derive(Clone, Debug)]
pub(crate) enum IrOp {
    Conv2d {
        x: ValId,
        w: ValId,
        /// Fused per-channel bias (weight-table value), if absorbed.
        bias: Option<ValId>,
        /// Fused inference-BN affine `(scale, shift)`, if absorbed.
        affine: Option<(Vec<f32>, Vec<f32>)>,
        /// Fused trailing ReLU.
        relu: bool,
        stride: usize,
        pad: usize,
        b: usize,
        c: usize,
        h: usize,
        w_in: usize,
        kh: usize,
        kw: usize,
        oc: usize,
        oh: usize,
        ow: usize,
        /// im2col lowering buffer (must be zero-filled every run).
        cols: ArenaRange,
        /// `[OC, B*OH*OW]` GEMM result before the batch-major reorder.
        ymat: ArenaRange,
    },
    AddBiasChannel {
        x: ValId,
        bias: ValId,
        b: usize,
        c: usize,
        hw: usize,
    },
    AddBiasRow {
        x: ValId,
        bias: ValId,
        d: usize,
    },
    Add {
        a: ValId,
        b: ValId,
        /// Fused trailing ReLU.
        relu: bool,
    },
    Sub {
        a: ValId,
        b: ValId,
    },
    Mul {
        a: ValId,
        b: ValId,
    },
    Neg {
        x: ValId,
    },
    Scale {
        x: ValId,
        c: f32,
    },
    Relu {
        x: ValId,
    },
    LeakyRelu {
        x: ValId,
        slope: f32,
    },
    Sigmoid {
        x: ValId,
    },
    Gelu {
        x: ValId,
    },
    ChannelAffine {
        x: ValId,
        scale: Vec<f32>,
        shift: Vec<f32>,
        b: usize,
        c: usize,
        hw: usize,
    },
    LayerNorm {
        x: ValId,
        gamma: ValId,
        beta: ValId,
        eps: f32,
        d: usize,
    },
    SoftmaxLast {
        x: ValId,
        d: usize,
    },
    Matmul {
        a: ValId,
        b: ValId,
        m: usize,
        k: usize,
        n: usize,
    },
    Bmm {
        kind: BmmKind,
        a: ValId,
        b: ValId,
        bt: usize,
        m: usize,
        k: usize,
        n: usize,
    },
    AttentionTm {
        q: ValId,
        k: ValId,
        v: ValId,
        scale: f32,
        b: usize,
        lq: usize,
        lk: usize,
        d: usize,
        dv: usize,
        /// One `[Lk]` score row (the fused kernel's streaming scratch).
        scratch: ArenaRange,
    },
    AttentionFm {
        q: ValId,
        k: ValId,
        v: ValId,
        scale: f32,
        b: usize,
        n: usize,
        nv: usize,
        l: usize,
        /// One `[L]` score row.
        scratch: ArenaRange,
    },
    /// Reshape: tape semantics are a copy, so the plan copies too.
    Copy {
        x: ValId,
    },
    Permute {
        x: ValId,
        /// Input stride for each *output* axis (`in_strides[axes[d]]`),
        /// precomputed so the runtime walk allocates nothing.
        stride_axes: Vec<usize>,
        out_dims: Vec<usize>,
    },
    ConcatChannels {
        parts: Vec<ValId>,
        part_c: Vec<usize>,
        b: usize,
        hw: usize,
        total_c: usize,
    },
    SliceChannels {
        x: ValId,
        c0: usize,
        c1: usize,
        b: usize,
        c: usize,
        hw: usize,
    },
    Upsample2x {
        x: ValId,
        planes: usize,
        h: usize,
        w: usize,
    },
    MaxPool2x2 {
        x: ValId,
        planes: usize,
        h: usize,
        w: usize,
    },
    MulScalarVar {
        x: ValId,
        s: ValId,
    },
}

/// One scheduled op and the value it defines.
#[derive(Clone, Debug)]
pub(crate) struct Step {
    pub op: IrOp,
    pub out: ValId,
}

/// A compiled, shape-specialized inference program.
///
/// Immutable once compiled; pair it with a [`crate::PlanExecutor`] (which
/// owns the mutable arena) to run forwards.
#[derive(Clone, Debug)]
pub struct Plan {
    pub(crate) steps: Vec<Step>,
    pub(crate) values: Vec<ValueInfo>,
    pub(crate) weights: Vec<Arc<Tensor>>,
    pub(crate) input: ValId,
    pub(crate) output: ValId,
    pub(crate) arena_len: usize,
    /// Step-index ranges of the dependency levels, in execution order.
    /// Steps are stored level-major, so the ranges are contiguous and
    /// cover `0..steps.len()`; ops inside one level are mutually
    /// independent and write pairwise-disjoint arena spans.
    pub(crate) levels: Vec<std::ops::Range<usize>>,
    /// Storage root per value (`alias[v] == v` unless `v` is an elided
    /// reshape of another value). Kept so alternative arena layouts —
    /// the quantized byte arena — can redo liveness with different
    /// per-value sizes while honouring the same sharing.
    pub(crate) alias: Vec<ValId>,
    stats: PlanStats,
}

impl Plan {
    /// Compiles the tape segment `[mark, ..)` of `g` into a plan mapping
    /// `input` to `output`.
    ///
    /// See [`Plan::capture_cached`]; this variant snapshots parameters into
    /// a private weight table (no sharing across plans).
    pub fn capture(
        g: &Graph,
        mark: usize,
        input: Var,
        output: Var,
        opts: PlanOptions,
    ) -> Result<Plan, String> {
        let mut cache = HashMap::new();
        Self::capture_cached(g, mark, input, output, opts, &mut cache)
    }

    /// [`Plan::capture`] with a caller-owned parameter snapshot cache,
    /// keyed by pre-mark tape index (stable for persistent parameters).
    ///
    /// Plans for different batch sizes of the same model share one cache so
    /// the weight `Arc`s — the dominant memory cost — are stored once.
    /// Anything recorded *before* `mark` is treated as a constant and
    /// snapshotted at capture time; the plan is invalidated by later weight
    /// mutation (recompile after training steps).
    pub fn capture_cached(
        g: &Graph,
        mark: usize,
        input: Var,
        output: Var,
        opts: PlanOptions,
        weight_cache: &mut HashMap<usize, Arc<Tensor>>,
    ) -> Result<Plan, String> {
        let nodes = g.export_segment(mark)?;
        let mut values: Vec<ValueInfo> = Vec::new();
        let mut weights: Vec<Arc<Tensor>> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        let mut tape2val: HashMap<usize, ValId> = HashMap::new();
        let mut input_val: Option<ValId> = None;

        for node in &nodes {
            if matches!(node.op, TapeOp::Leaf) {
                if node.index == input.index() {
                    let id = values.len();
                    values.push(ValueInfo {
                        shape: node.shape.clone(),
                        numel: node.shape.iter().product(),
                        loc: Loc::Input,
                    });
                    tape2val.insert(node.index, id);
                    input_val = Some(id);
                } else {
                    // A constant materialized mid-forward (PGNN kernels).
                    // Not shared through the cache: post-mark tape indices
                    // are not stable across captures.
                    let t = Arc::new(g.value_at(node.index).clone());
                    let id = push_weight(&mut values, &mut weights, t);
                    tape2val.insert(node.index, id);
                }
                continue;
            }
            let out = values.len();
            values.push(ValueInfo {
                shape: node.shape.clone(),
                numel: node.shape.iter().product(),
                loc: Loc::Unassigned,
            });
            tape2val.insert(node.index, out);
            let op = lower_op(
                node.index,
                &node.op,
                &node.shape,
                LowerCtx {
                    g,
                    mark,
                    tape2val: &mut tape2val,
                    weight_cache,
                    values: &mut values,
                    weights: &mut weights,
                },
            )?;
            steps.push(Step { op, out });
        }

        let input_val = input_val
            .ok_or_else(|| "plan input is not a leaf of the captured segment".to_string())?;
        let output_val = *tape2val
            .get(&output.index())
            .ok_or_else(|| "plan output is not in the captured segment".to_string())?;
        if !matches!(values[output_val].loc, Loc::Unassigned) {
            return Err("plan output must be computed inside the captured segment".to_string());
        }

        let mut stats = PlanStats::default();
        fuse(&mut steps, output_val, &mut stats);
        if opts.fold_bn {
            fold_bn(&mut steps, &mut values, &mut weights, &mut stats);
        }
        let alias = elide_copies(&mut steps, &values, output_val, &mut stats);
        let levels = schedule_levels(&mut steps, &values, &alias);
        let arena_len = assign_arena(&mut steps, &mut values, output_val, &alias, &levels);
        verify_levels(&steps, &values, &levels)?;

        stats.ops = steps.len();
        stats.arena_bytes = arena_len * std::mem::size_of::<f32>();
        stats.weights = weights.len();
        stats.weight_bytes = weights
            .iter()
            .map(|w| w.numel() * std::mem::size_of::<f32>())
            .sum();
        stats.levels = levels.len();
        stats.max_level_width = levels.iter().map(|r| r.len()).max().unwrap_or(0);

        Ok(Plan {
            steps,
            values,
            weights,
            input: input_val,
            output: output_val,
            arena_len,
            levels,
            alias,
            stats,
        })
    }

    /// Compile-time counters (op/fusion/arena sizes).
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// Shape of the input the plan was specialized for.
    pub fn input_shape(&self) -> &[usize] {
        &self.values[self.input].shape
    }

    /// Shape of the plan output.
    pub fn output_shape(&self) -> &[usize] {
        &self.values[self.output].shape
    }

    /// Arena length in `f32` elements.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Number of elements the forward input must have.
    pub fn input_numel(&self) -> usize {
        self.values[self.input].numel
    }

    /// Estimated bytes of the plan's own metadata: op list, value table,
    /// alias map, level ranges and per-op heap vectors (fused affines,
    /// permute strides, concat part lists). Weight tensor *data* is
    /// excluded — it is accounted separately via
    /// [`PlanStats::weight_bytes`]. The plan cache charges this so
    /// `MFAPLACE_PLAN_CACHE_MB` bounds what the process actually holds,
    /// not just arenas and weights.
    pub fn metadata_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut b = self.steps.len() * size_of::<Step>()
            + self.values.len() * size_of::<ValueInfo>()
            + self.alias.len() * size_of::<ValId>()
            + self.levels.len() * size_of::<std::ops::Range<usize>>()
            + self.weights.len() * size_of::<Arc<Tensor>>();
        for v in &self.values {
            b += v.shape.len() * size_of::<usize>();
        }
        for step in &self.steps {
            b += match &step.op {
                IrOp::Conv2d { affine, .. } => affine
                    .as_ref()
                    .map_or(0, |(sc, sh)| (sc.len() + sh.len()) * size_of::<f32>()),
                IrOp::ChannelAffine { scale, shift, .. } => {
                    (scale.len() + shift.len()) * size_of::<f32>()
                }
                IrOp::Permute {
                    stride_axes,
                    out_dims,
                    ..
                } => (stride_axes.len() + out_dims.len()) * size_of::<usize>(),
                IrOp::ConcatChannels { parts, part_c, .. } => {
                    (parts.len() + part_c.len()) * size_of::<usize>()
                }
                _ => 0,
            };
        }
        b
    }

    /// Human-readable multi-line summary (the `model-info` output).
    pub fn summary(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compiled plan: {} ops, arena {:.2} MiB ({} floats)",
            s.ops,
            s.arena_bytes as f64 / (1024.0 * 1024.0),
            self.arena_len,
        );
        let _ = writeln!(
            out,
            "  weights: {} tensors, {:.2} MiB",
            s.weights,
            s.weight_bytes as f64 / (1024.0 * 1024.0),
        );
        let _ = writeln!(
            out,
            "  fusions: conv+bias {}, conv+affine {}, conv+relu {}, add+relu {}, bn-folded {}",
            s.fused_conv_bias,
            s.fused_conv_affine,
            s.fused_conv_relu,
            s.fused_add_relu,
            s.folded_bn,
        );
        let _ = writeln!(
            out,
            "  scheduler: {} levels (critical path {} ops), widest level {} ops, copies elided {}",
            s.levels, s.levels, s.max_level_width, s.copies_elided,
        );
        let _ = write!(
            out,
            "  input {:?} -> output {:?}",
            self.input_shape(),
            self.output_shape(),
        );
        out
    }
}

fn push_weight(
    values: &mut Vec<ValueInfo>,
    weights: &mut Vec<Arc<Tensor>>,
    t: Arc<Tensor>,
) -> ValId {
    let id = values.len();
    values.push(ValueInfo {
        shape: t.shape().to_vec(),
        numel: t.numel(),
        loc: Loc::Weight(weights.len()),
    });
    weights.push(t);
    id
}

struct LowerCtx<'a> {
    g: &'a Graph,
    mark: usize,
    tape2val: &'a mut HashMap<usize, ValId>,
    weight_cache: &'a mut HashMap<usize, Arc<Tensor>>,
    values: &'a mut Vec<ValueInfo>,
    weights: &'a mut Vec<Arc<Tensor>>,
}

impl LowerCtx<'_> {
    /// Resolves a tape operand index to a plan value, snapshotting pre-mark
    /// nodes (parameters) into the weight table on first sight.
    fn resolve(&mut self, ti: usize) -> Result<ValId, String> {
        if let Some(&v) = self.tape2val.get(&ti) {
            return Ok(v);
        }
        if ti >= self.mark {
            return Err(format!(
                "operand {ti} references a segment node before its definition"
            ));
        }
        let t = self
            .weight_cache
            .entry(ti)
            .or_insert_with(|| Arc::new(self.g.value_at(ti).clone()))
            .clone();
        let id = push_weight(self.values, self.weights, t);
        self.tape2val.insert(ti, id);
        Ok(id)
    }

    fn shape(&self, v: ValId) -> &[usize] {
        &self.values[v].shape
    }

    fn dims4(&self, v: ValId) -> Result<(usize, usize, usize, usize), String> {
        let s = self.shape(v);
        if s.len() != 4 {
            return Err(format!("expected rank-4 operand, got {s:?}"));
        }
        Ok((s[0], s[1], s[2], s[3]))
    }
}

/// Lowers one exported tape op to an [`IrOp`] with baked dims.
fn lower_op(
    index: usize,
    op: &TapeOp,
    out_shape: &[usize],
    mut cx: LowerCtx<'_>,
) -> Result<IrOp, String> {
    let ir = match op {
        TapeOp::Leaf => unreachable!("leaves are handled by the capture loop"),
        TapeOp::Add(a, b) => IrOp::Add {
            a: cx.resolve(*a)?,
            b: cx.resolve(*b)?,
            relu: false,
        },
        TapeOp::Sub(a, b) => IrOp::Sub {
            a: cx.resolve(*a)?,
            b: cx.resolve(*b)?,
        },
        TapeOp::Mul(a, b) => IrOp::Mul {
            a: cx.resolve(*a)?,
            b: cx.resolve(*b)?,
        },
        TapeOp::Neg(x) => IrOp::Neg { x: cx.resolve(*x)? },
        TapeOp::Scale(x, c) => IrOp::Scale {
            x: cx.resolve(*x)?,
            c: *c,
        },
        TapeOp::Matmul(a, b) => {
            let (a, b) = (cx.resolve(*a)?, cx.resolve(*b)?);
            let (m, k) = (cx.shape(a)[0], cx.shape(a)[1]);
            let n = cx.shape(b)[1];
            IrOp::Matmul { a, b, m, k, n }
        }
        TapeOp::Bmm(a, b) | TapeOp::BmmNT(a, b) | TapeOp::BmmTN(a, b) => {
            let kind = match op {
                TapeOp::Bmm(..) => BmmKind::Nn,
                TapeOp::BmmNT(..) => BmmKind::Nt,
                _ => BmmKind::Tn,
            };
            let (a, b) = (cx.resolve(*a)?, cx.resolve(*b)?);
            let sa = cx.shape(a);
            let (bt, m, k) = match kind {
                // a: [bt, m, k] for NN/NT; [bt, k, m] for TN.
                BmmKind::Nn | BmmKind::Nt => (sa[0], sa[1], sa[2]),
                BmmKind::Tn => (sa[0], sa[2], sa[1]),
            };
            let sb = cx.shape(b);
            let n = match kind {
                BmmKind::Nn | BmmKind::Tn => sb[2],
                BmmKind::Nt => sb[1],
            };
            IrOp::Bmm {
                kind,
                a,
                b,
                bt,
                m,
                k,
                n,
            }
        }
        TapeOp::Attention {
            q,
            k,
            v,
            scale,
            feature_major,
        } => {
            let (q, k, v) = (cx.resolve(*q)?, cx.resolve(*k)?, cx.resolve(*v)?);
            if *feature_major {
                let (b, n, l) = {
                    let s = cx.shape(q);
                    (s[0], s[1], s[2])
                };
                let nv = cx.shape(v)[1];
                IrOp::AttentionFm {
                    q,
                    k,
                    v,
                    scale: *scale,
                    b,
                    n,
                    nv,
                    l,
                    scratch: ArenaRange::default(),
                }
            } else {
                let (b, lq, d) = {
                    let s = cx.shape(q);
                    (s[0], s[1], s[2])
                };
                let lk = cx.shape(k)[1];
                let dv = cx.shape(v)[2];
                IrOp::AttentionTm {
                    q,
                    k,
                    v,
                    scale: *scale,
                    b,
                    lq,
                    lk,
                    d,
                    dv,
                    scratch: ArenaRange::default(),
                }
            }
        }
        TapeOp::Conv2d { x, w, stride, pad } => {
            let (x, w) = (cx.resolve(*x)?, cx.resolve(*w)?);
            let (b, c, h, w_in) = cx.dims4(x)?;
            let ws = cx.shape(w);
            if ws.len() != 4 {
                return Err(format!("node {index}: conv weight must be rank-4"));
            }
            let (oc, kh, kw) = (ws[0], ws[2], ws[3]);
            let (oh, ow) = conv_out_size(h, w_in, kh, kw, *stride, *pad);
            IrOp::Conv2d {
                x,
                w,
                bias: None,
                affine: None,
                relu: false,
                stride: *stride,
                pad: *pad,
                b,
                c,
                h,
                w_in,
                kh,
                kw,
                oc,
                oh,
                ow,
                cols: ArenaRange::default(),
                ymat: ArenaRange::default(),
            }
        }
        TapeOp::AddBiasChannel(x, bias) => {
            let (x, bias) = (cx.resolve(*x)?, cx.resolve(*bias)?);
            let (b, c, h, w) = cx.dims4(x)?;
            IrOp::AddBiasChannel {
                x,
                bias,
                b,
                c,
                hw: h * w,
            }
        }
        TapeOp::AddBiasRow(x, bias) => {
            let (x, bias) = (cx.resolve(*x)?, cx.resolve(*bias)?);
            let d = *cx.shape(x).last().expect("rank >= 1");
            IrOp::AddBiasRow { x, bias, d }
        }
        TapeOp::Relu(x) => IrOp::Relu { x: cx.resolve(*x)? },
        TapeOp::LeakyRelu(x, slope) => IrOp::LeakyRelu {
            x: cx.resolve(*x)?,
            slope: *slope,
        },
        TapeOp::Sigmoid(x) => IrOp::Sigmoid { x: cx.resolve(*x)? },
        TapeOp::Gelu(x) => IrOp::Gelu { x: cx.resolve(*x)? },
        TapeOp::ChannelAffine { x, scale, shift } => {
            let x = cx.resolve(*x)?;
            let (b, c, h, w) = cx.dims4(x)?;
            IrOp::ChannelAffine {
                x,
                scale: scale.clone(),
                shift: shift.clone(),
                b,
                c,
                hw: h * w,
            }
        }
        TapeOp::LayerNorm {
            x,
            gamma,
            beta,
            eps,
        } => {
            let (x, gamma, beta) = (cx.resolve(*x)?, cx.resolve(*gamma)?, cx.resolve(*beta)?);
            let d = *cx.shape(x).last().expect("rank >= 1");
            IrOp::LayerNorm {
                x,
                gamma,
                beta,
                eps: *eps,
                d,
            }
        }
        TapeOp::SoftmaxLast(x) => {
            let x = cx.resolve(*x)?;
            let d = *cx.shape(x).last().expect("rank >= 1");
            IrOp::SoftmaxLast { x, d }
        }
        TapeOp::Reshape(x) => IrOp::Copy { x: cx.resolve(*x)? },
        TapeOp::Permute { x, axes } => {
            let x = cx.resolve(*x)?;
            let in_strides = strides_for(cx.shape(x));
            if axes.len() > 8 {
                return Err(format!("node {index}: permute rank > 8 unsupported"));
            }
            IrOp::Permute {
                x,
                stride_axes: axes.iter().map(|&a| in_strides[a]).collect(),
                out_dims: out_shape.to_vec(),
            }
        }
        TapeOp::ConcatChannels(parts) => {
            let parts = parts
                .iter()
                .map(|&p| cx.resolve(p))
                .collect::<Result<Vec<_>, _>>()?;
            let (b, _, h, w) = cx.dims4(parts[0])?;
            let part_c: Vec<usize> = parts.iter().map(|&p| cx.shape(p)[1]).collect();
            let total_c = part_c.iter().sum();
            IrOp::ConcatChannels {
                parts,
                part_c,
                b,
                hw: h * w,
                total_c,
            }
        }
        TapeOp::SliceChannels { x, c0, c1 } => {
            let x = cx.resolve(*x)?;
            let (b, c, h, w) = cx.dims4(x)?;
            IrOp::SliceChannels {
                x,
                c0: *c0,
                c1: *c1,
                b,
                c,
                hw: h * w,
            }
        }
        TapeOp::Upsample2x(x) => {
            let x = cx.resolve(*x)?;
            let (b, c, h, w) = cx.dims4(x)?;
            IrOp::Upsample2x {
                x,
                planes: b * c,
                h,
                w,
            }
        }
        TapeOp::MaxPool2x2(x) => {
            let x = cx.resolve(*x)?;
            let (b, c, h, w) = cx.dims4(x)?;
            IrOp::MaxPool2x2 {
                x,
                planes: b * c,
                h,
                w,
            }
        }
        TapeOp::MulScalarVar(x, s) => IrOp::MulScalarVar {
            x: cx.resolve(*x)?,
            s: cx.resolve(*s)?,
        },
    };
    Ok(ir)
}

/// Calls `f` for every operand value of `op` (with repeats if aliased).
pub(crate) fn for_each_operand(op: &IrOp, f: &mut dyn FnMut(ValId)) {
    match op {
        IrOp::Conv2d { x, w, bias, .. } => {
            f(*x);
            f(*w);
            if let Some(b) = bias {
                f(*b);
            }
        }
        IrOp::AddBiasChannel { x, bias, .. } | IrOp::AddBiasRow { x, bias, .. } => {
            f(*x);
            f(*bias);
        }
        IrOp::Add { a, b, .. } | IrOp::Sub { a, b } | IrOp::Mul { a, b } => {
            f(*a);
            f(*b);
        }
        IrOp::Neg { x }
        | IrOp::Scale { x, .. }
        | IrOp::Relu { x }
        | IrOp::LeakyRelu { x, .. }
        | IrOp::Sigmoid { x }
        | IrOp::Gelu { x }
        | IrOp::ChannelAffine { x, .. }
        | IrOp::SoftmaxLast { x, .. }
        | IrOp::Copy { x }
        | IrOp::Permute { x, .. }
        | IrOp::SliceChannels { x, .. }
        | IrOp::Upsample2x { x, .. }
        | IrOp::MaxPool2x2 { x, .. } => f(*x),
        IrOp::LayerNorm { x, gamma, beta, .. } => {
            f(*x);
            f(*gamma);
            f(*beta);
        }
        IrOp::Matmul { a, b, .. } | IrOp::Bmm { a, b, .. } => {
            f(*a);
            f(*b);
        }
        IrOp::AttentionTm { q, k, v, .. } | IrOp::AttentionFm { q, k, v, .. } => {
            f(*q);
            f(*k);
            f(*v);
        }
        IrOp::ConcatChannels { parts, .. } => {
            for &p in parts {
                f(p);
            }
        }
        IrOp::MulScalarVar { x, s } => {
            f(*x);
            f(*s);
        }
    }
}

/// What a conv (or add) chain step absorbs during fusion.
enum Absorb {
    Bias(ValId),
    Affine(Vec<f32>, Vec<f32>),
    Relu,
}

/// Fuses single-consumer `conv → bias → affine → relu` chains into the
/// conv's epilogue, and `add → relu` pairs.
///
/// Safe for the bitwise contract: the fused epilogue applies the exact
/// per-element op sequence the tape recorded (see
/// `mfaplace_tensor::lowlevel::conv_reorder_epilogue`).
fn fuse(steps: &mut Vec<Step>, output: ValId, stats: &mut PlanStats) {
    // consumers[v] = indices of steps reading v.
    let max_val = steps.iter().map(|s| s.out + 1).max().unwrap_or(0);
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); max_val];
    for (i, step) in steps.iter().enumerate() {
        for_each_operand(&step.op, &mut |v| {
            if v < max_val {
                consumers[v].push(i);
            }
        });
    }
    let mut removed = vec![false; steps.len()];
    for i in 0..steps.len() {
        if removed[i] {
            continue;
        }
        let is_conv = matches!(steps[i].op, IrOp::Conv2d { .. });
        let is_add = matches!(steps[i].op, IrOp::Add { relu: false, .. });
        if !is_conv && !is_add {
            continue;
        }
        loop {
            let out = steps[i].out;
            if out == output || consumers[out].len() != 1 {
                break;
            }
            let j = consumers[out][0];
            if removed[j] {
                break;
            }
            let absorb = if is_conv {
                let IrOp::Conv2d {
                    bias, affine, relu, ..
                } = &steps[i].op
                else {
                    unreachable!()
                };
                match &steps[j].op {
                    IrOp::AddBiasChannel { x, bias: bv, .. }
                        if *x == out && bias.is_none() && affine.is_none() && !relu =>
                    {
                        Some(Absorb::Bias(*bv))
                    }
                    IrOp::ChannelAffine {
                        x, scale, shift, ..
                    } if *x == out && !relu => Some(Absorb::Affine(scale.clone(), shift.clone())),
                    IrOp::Relu { x } if *x == out && !relu => Some(Absorb::Relu),
                    _ => None,
                }
            } else {
                match &steps[j].op {
                    IrOp::Relu { x } if *x == out => Some(Absorb::Relu),
                    _ => None,
                }
            };
            let Some(absorb) = absorb else { break };
            let new_out = steps[j].out;
            match (&mut steps[i].op, absorb) {
                (IrOp::Conv2d { bias, .. }, Absorb::Bias(bv)) => {
                    *bias = Some(bv);
                    stats.fused_conv_bias += 1;
                }
                (IrOp::Conv2d { affine, .. }, Absorb::Affine(sc, sh)) => {
                    *affine = Some((sc, sh));
                    stats.fused_conv_affine += 1;
                }
                (IrOp::Conv2d { relu, .. }, Absorb::Relu) => {
                    *relu = true;
                    stats.fused_conv_relu += 1;
                }
                (IrOp::Add { relu, .. }, Absorb::Relu) => {
                    *relu = true;
                    stats.fused_add_relu += 1;
                }
                _ => unreachable!(),
            }
            steps[i].out = new_out;
            removed[j] = true;
            if is_add {
                break; // add absorbs at most the one trailing relu
            }
        }
    }
    let mut keep = removed.iter().map(|r| !r);
    steps.retain(|_| keep.next().expect("keep mask length"));
}

/// Folds fused `channel_affine` epilogues into conv weights/bias via f64
/// intermediates. Only runs when the conv weight (and bias) are
/// weight-table constants — always true for captured model forwards.
fn fold_bn(
    steps: &mut [Step],
    values: &mut Vec<ValueInfo>,
    weights: &mut Vec<Arc<Tensor>>,
    stats: &mut PlanStats,
) {
    for step in steps.iter_mut() {
        let IrOp::Conv2d {
            w,
            bias,
            affine,
            oc,
            ..
        } = &mut step.op
        else {
            continue;
        };
        if affine.is_none() {
            continue;
        }
        let Loc::Weight(widx) = values[*w].loc else {
            continue;
        };
        let bias_data: Option<Vec<f32>> = match bias {
            Some(bid) => match values[*bid].loc {
                Loc::Weight(bidx) => Some(weights[bidx].data().to_vec()),
                _ => continue,
            },
            None => None,
        };
        let (scale, shift) = affine.take().expect("checked above");
        let wt = &weights[widx];
        let mut wd: Vec<f32> = wt.data().to_vec();
        let per_oc = wd.len() / *oc;
        for o in 0..*oc {
            let s = f64::from(scale[o]);
            for v in &mut wd[o * per_oc..(o + 1) * per_oc] {
                *v = (s * f64::from(*v)) as f32;
            }
        }
        let new_w = Tensor::from_vec(wt.shape().to_vec(), wd).expect("folded conv weight");
        *w = push_weight(values, weights, Arc::new(new_w));
        let new_bias: Vec<f32> = match &bias_data {
            Some(bd) => (0..*oc)
                .map(|o| (f64::from(scale[o]) * f64::from(bd[o]) + f64::from(shift[o])) as f32)
                .collect(),
            // No pre-existing bias: the folded bias is the shift exactly.
            None => shift.clone(),
        };
        let new_bias = Tensor::from_vec(vec![*oc], new_bias).expect("folded conv bias");
        *bias = Some(push_weight(values, weights, Arc::new(new_bias)));
        stats.folded_bn += 1;
    }
}

/// First-fit arena allocator over `(off, len)` holes, with coalescing.
/// Unit-agnostic: the f32 arena allocates in floats, the quantized byte
/// arena in 64-byte blocks.
#[derive(Default)]
pub(crate) struct FreeList {
    /// Free holes sorted by offset, pairwise non-adjacent.
    free: Vec<(usize, usize)>,
    /// High-water mark: total arena length.
    high: usize,
}

impl FreeList {
    pub(crate) fn alloc(&mut self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        for i in 0..self.free.len() {
            let (off, hole) = self.free[i];
            if hole >= len {
                if hole == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + len, hole - len);
                }
                return off;
            }
        }
        let off = self.high;
        self.high += len;
        off
    }

    /// High-water mark: total allocated length so far.
    pub(crate) fn high(&self) -> usize {
        self.high
    }

    pub(crate) fn release(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let pos = self.free.partition_point(|&(o, _)| o < off);
        self.free.insert(pos, (off, len));
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
    }
}

/// Rewrites pure-reshape [`IrOp::Copy`] steps into aliases of their source
/// value and removes them from the step list.
///
/// Returns `alias`, mapping every value to its storage root (`alias[v] ==
/// v` for non-aliased values; chains are collapsed at build time). Safe
/// because no IR op ever mutates an existing span — a reshape output is
/// byte-identical to its source forever — provided the liveness pass keeps
/// the shared span alive until the last reader of *any* member of the
/// alias class ([`assign_arena`] resolves reads through `alias` for
/// exactly this write-after-read extension).
///
/// The one copy kept: a reshape **of the input or a weight** that is the
/// plan output, because the executor's output getter requires an
/// arena-resident span.
fn elide_copies(
    steps: &mut Vec<Step>,
    values: &[ValueInfo],
    output: ValId,
    stats: &mut PlanStats,
) -> Vec<ValId> {
    let mut alias: Vec<ValId> = (0..values.len()).collect();
    let mut removed: Vec<bool> = Vec::with_capacity(steps.len());
    for step in steps.iter() {
        let IrOp::Copy { x } = step.op else {
            removed.push(false);
            continue;
        };
        let root = alias[x];
        let root_in_arena = matches!(values[root].loc, Loc::Unassigned);
        if step.out == output && !root_in_arena {
            removed.push(false);
            continue;
        }
        debug_assert_eq!(values[step.out].numel, values[root].numel);
        alias[step.out] = root;
        stats.copies_elided += 1;
        removed.push(true);
    }
    let mut rm = removed.into_iter();
    steps.retain(|_| !rm.next().expect("removal mask covers all steps"));
    alias
}

/// Partitions the steps into dependency levels (ASAP schedule): `level[s]`
/// is the length of the longest operand chain feeding `s`, so every level
/// is a wave of mutually independent ops and the level count equals the
/// DAG's critical-path depth. Reorders `steps` level-major (stable within
/// a level, preserving the original op-index merge order) and returns the
/// contiguous step range of each level.
fn schedule_levels(
    steps: &mut Vec<Step>,
    values: &[ValueInfo],
    alias: &[ValId],
) -> Vec<std::ops::Range<usize>> {
    let n = steps.len();
    // def_level[v]: level of the step defining root value v (None for the
    // input and weights, which are ready before level 0).
    let mut def_level: Vec<Option<usize>> = vec![None; values.len()];
    let mut level_of: Vec<usize> = vec![0; n];
    for (i, step) in steps.iter().enumerate() {
        let mut lv = 0usize;
        for_each_operand(&step.op, &mut |v| {
            if let Some(dl) = def_level[alias[v]] {
                lv = lv.max(dl + 1);
            }
        });
        level_of[i] = lv;
        def_level[step.out] = Some(lv);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (level_of[i], i));
    let reordered: Vec<Step> = order.iter().map(|&i| steps[i].clone()).collect();
    *steps = reordered;
    let mut ranges = Vec::new();
    let mut start = 0usize;
    for j in 1..=n {
        if j == n || level_of[order[j]] != level_of[order[j - 1]] {
            ranges.push(start..j);
            start = j;
        }
    }
    ranges
}

/// Assigns every intermediate (and op-local scratch) an arena span from
/// liveness intervals; returns the arena length in floats.
///
/// Spans are allocated and released at **level** granularity: all of a
/// level's outputs and scratch are placed while every span read at or
/// after this level is still held, and frees happen only at the end of a
/// level. Consequences, which the executor's raw-pointer slicing relies
/// on:
///
/// - an op's destination/scratch span never overlaps a live source span
///   (the per-op invariant serial replay needs), and
/// - ops in the *same* level hold pairwise-disjoint write spans and never
///   write a span any same-level op reads (the stronger invariant that
///   makes parallel level execution bitwise identical to serial replay).
///
/// Reads resolve through `alias`, so an elided reshape extends its
/// source's lifetime to the last reader of the whole alias class.
fn assign_arena(
    steps: &mut [Step],
    values: &mut [ValueInfo],
    output: ValId,
    alias: &[ValId],
    levels: &[std::ops::Range<usize>],
) -> usize {
    let out_root = alias[output];
    // last_level[r]: level of the final read of root value r.
    let mut last_level: Vec<Option<usize>> = vec![None; values.len()];
    for (li, range) in levels.iter().enumerate() {
        for step in &steps[range.clone()] {
            for_each_operand(&step.op, &mut |v| {
                last_level[alias[v]] = Some(li);
            });
        }
    }

    let mut fl = FreeList::default();
    let mut freed = vec![false; values.len()];
    for (li, range) in levels.iter().enumerate() {
        // Allocate every output and scratch span of the level first…
        let mut level_scratch: Vec<ArenaRange> = Vec::new();
        for step in &mut steps[range.clone()] {
            let out = step.out;
            let out_len = values[out].numel;
            let off = fl.alloc(out_len);
            values[out].loc = Loc::Arena { off, len: out_len };
            match &mut step.op {
                IrOp::Conv2d {
                    cols,
                    ymat,
                    b,
                    c,
                    kh,
                    kw,
                    oc,
                    oh,
                    ow,
                    ..
                } => {
                    let cl = *c * *kh * *kw * *b * *oh * *ow;
                    let yl = *oc * *b * *oh * *ow;
                    *cols = ArenaRange {
                        off: fl.alloc(cl),
                        len: cl,
                    };
                    *ymat = ArenaRange {
                        off: fl.alloc(yl),
                        len: yl,
                    };
                    level_scratch.push(*cols);
                    level_scratch.push(*ymat);
                }
                IrOp::AttentionTm { scratch: s, lk, .. } => {
                    *s = ArenaRange {
                        off: fl.alloc(*lk),
                        len: *lk,
                    };
                    level_scratch.push(*s);
                }
                IrOp::AttentionFm { scratch: s, l, .. } => {
                    *s = ArenaRange {
                        off: fl.alloc(*l),
                        len: *l,
                    };
                    level_scratch.push(*s);
                }
                _ => {}
            }
        }
        // …then release at level end: scratch, operands whose final read
        // is in this level, and outputs nothing ever reads.
        for s in level_scratch {
            fl.release(s.off, s.len);
        }
        for step in &steps[range.clone()] {
            let mut dying: Vec<ValId> = Vec::new();
            for_each_operand(&step.op, &mut |v| {
                let r = alias[v];
                if last_level[r] == Some(li) && r != out_root && !dying.contains(&r) {
                    dying.push(r);
                }
            });
            for r in dying {
                if let Loc::Arena { off, len } = values[r].loc {
                    if !freed[r] {
                        fl.release(off, len);
                        freed[r] = true;
                    }
                }
            }
            let out = step.out;
            if last_level[out].is_none() && out != out_root {
                if let Loc::Arena { off, len } = values[out].loc {
                    if !freed[out] {
                        fl.release(off, len);
                        freed[out] = true;
                    }
                }
            }
        }
    }
    // Aliased values share their root's storage (same byte length — a
    // reshape preserves numel; roots that are weights or the input keep
    // their non-arena loc).
    for v in 0..values.len() {
        if alias[v] != v {
            values[v].loc = values[alias[v]].loc;
        }
    }
    fl.high
}

/// Post-assignment safety check of the parallel-execution invariant: ops
/// in the same level must neither write overlapping spans nor write a span
/// another same-level op reads. A violation turns into a capture error
/// (the predictor then falls back to the tape engine) instead of silent
/// data corruption.
fn verify_levels(
    steps: &[Step],
    values: &[ValueInfo],
    levels: &[std::ops::Range<usize>],
) -> Result<(), String> {
    let write_spans = |step: &Step| -> Vec<(usize, usize)> {
        let mut w = Vec::new();
        if let Loc::Arena { off, len } = values[step.out].loc {
            w.push((off, len));
        }
        match &step.op {
            IrOp::Conv2d { cols, ymat, .. } => {
                w.push((cols.off, cols.len));
                w.push((ymat.off, ymat.len));
            }
            IrOp::AttentionTm { scratch, .. } | IrOp::AttentionFm { scratch, .. } => {
                w.push((scratch.off, scratch.len));
            }
            _ => {}
        }
        w.retain(|&(_, len)| len > 0);
        w
    };
    let read_spans = |step: &Step| -> Vec<(usize, usize)> {
        let mut r = Vec::new();
        for_each_operand(&step.op, &mut |v| {
            if let Loc::Arena { off, len } = values[v].loc {
                if len > 0 {
                    r.push((off, len));
                }
            }
        });
        r
    };
    let overlap = |a: (usize, usize), b: (usize, usize)| a.0 < b.0 + b.1 && b.0 < a.0 + a.1;
    for (li, range) in levels.iter().enumerate() {
        let level = &steps[range.clone()];
        for i in 0..level.len() {
            let wi = write_spans(&level[i]);
            let ri = read_spans(&level[i]);
            for other in level.iter().skip(i + 1) {
                let wj = write_spans(other);
                let rj = read_spans(other);
                for &a in &wi {
                    if wj.iter().any(|&b| overlap(a, b)) {
                        return Err(format!("level {li}: write/write span overlap"));
                    }
                    if rj.iter().any(|&b| overlap(a, b)) {
                        return Err(format!("level {li}: write/read span overlap"));
                    }
                }
                for &a in &ri {
                    if wj.iter().any(|&b| overlap(a, b)) {
                        return Err(format!("level {li}: read/write span overlap"));
                    }
                }
            }
        }
    }
    Ok(())
}
