//! Quantized compiled plans: int8/f16 activation arenas with offline
//! calibration and a serial byte-arena executor.
//!
//! A [`QuantPlan`] is built *from* a compiled f32 [`Plan`] plus a
//! [`Calibration`] (per-step activation abs-max ranges collected by
//! replaying the f32 plan over representative inputs). It reuses the f32
//! plan's step list, dependency levels and alias classes unchanged, and
//! re-derives only the storage layer:
//!
//! - every intermediate gets a **storage class** ([`Store`]): `i8`
//!   (symmetric per-tensor scale, zero-point 0) for conv-trunk values,
//!   IEEE binary16 for transformer-ish values (attention, softmax,
//!   layer-norm, GELU neighbourhoods — where 8-bit dynamic range is not
//!   enough), and f32 where calibration marks a value unquantizable
//!   (non-finite range) or for the plan output (the level-map acceptance
//!   contract is stated against f32 logits);
//! - conv and linear **weights** are quantized per output channel
//!   (`scale[oc] = absmax(row)/127`), so one i8×i8→i32 GEMM with a
//!   per-row dequant epilogue replaces the f32 GEMM — the epilogue fuses
//!   bias/affine/ReLU exactly like the f32 conv epilogue;
//! - every step compiles to a [`StepPlan`]: `ConvI8`/`MatmulI8` run
//!   dequant-free on the exact int8 kernels in `mfaplace_tensor::simd`
//!   (bitwise identical across scalar/AVX2/NEON — integer accumulation
//!   has no rounding), everything else runs `Generic`: operands are
//!   dequantized into scratch and the op executes the *same* f32
//!   arithmetic as the f32 plan ([`crate::exec::exec_op`]).
//!
//! # Arena
//!
//! Activations live in a byte-granular arena (backed by `Vec<u64>` for
//! 8-byte alignment; spans are allocated in 64-byte blocks, so every
//! typed view is aligned). Liveness re-runs the f32 plan's level-granular
//! first-fit scheme with per-value byte sizes. A single shared scratch
//! region at the arena tail — sized to the largest per-step need — holds
//! quantize/dequant/im2col/GEMM temporaries; because that region is
//! shared across steps, the quantized executor is **serial only** (the
//! f32 plan keeps the parallel level scheduler).
//!
//! # Determinism
//!
//! Calibration is a serial replay, so collected ranges — and therefore
//! scales, quantized weights and the serving artifact built from them —
//! are bitwise-reproducible for a given checkpoint, input set and kernel
//! backend.

use std::sync::Arc;

use mfaplace_tensor::half::{f16_bits_to_f32, f32_to_f16_bits};
use mfaplace_tensor::simd;

use crate::exec::{exec_op, run_plan_observed, OpScratch};
use crate::plan::{for_each_operand, FreeList, IrOp, Loc, Plan, PlanStats, Step, ValId};

/// Byte-span allocation granularity: every arena span starts on a
/// 64-byte boundary, so f32/f16/i32 views over the `u64` backing are
/// always aligned.
const BLOCK: usize = 64;

/// Numeric precision of a quantized plan's activation arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// int8 conv trunk + f16 transformer values, int8 GEMM compute.
    #[default]
    Int8,
    /// Everything stored as binary16; compute stays f32 (storage-only).
    F16,
}

impl Precision {
    /// Stable lower-case name (CLI flags, metrics labels, artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Precision::Int8 => "int8",
            Precision::F16 => "f16",
        }
    }

    /// Parses a CLI/env spelling. Accepts `int8`/`i8` and `f16`/`half`.
    pub fn parse(s: &str) -> Option<Precision> {
        match s.trim().to_ascii_lowercase().as_str() {
            "int8" | "i8" => Some(Precision::Int8),
            "f16" | "half" => Some(Precision::F16),
            _ => None,
        }
    }

    /// One-byte artifact tag.
    pub fn code(self) -> u8 {
        match self {
            Precision::Int8 => 1,
            Precision::F16 => 2,
        }
    }

    /// Inverse of [`Precision::code`].
    pub fn from_code(c: u8) -> Option<Precision> {
        match c {
            1 => Some(Precision::Int8),
            2 => Some(Precision::F16),
            _ => None,
        }
    }
}

/// Options for [`QuantPlan::build`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuantOptions {
    /// Arena precision; see [`Precision`].
    pub precision: Precision,
}

/// Per-step activation ranges collected by replaying a compiled f32 plan
/// over representative inputs (the offline calibration pass).
///
/// Indexed by **compiled step order** and tagged with each step's op
/// kind. Step order is a deterministic function of the captured graph
/// structure, but it is *not* perfectly batch-independent (e.g. the
/// ViT positional embedding tiles itself with an extra concat at batch
/// 2+), so [`QuantPlan::build`] aligns calibration entries to the
/// target plan by op-kind sequence: an exact kind match applies
/// directly, a near match (at least 90% of steps align under a
/// longest-common-subsequence pairing — batch-bucket variants of one
/// model) leaves the unmatched steps unquantized (f32), and anything
/// worse — a different checkpoint or grid — is rejected as stale. A
/// non-finite range entry marks the value unquantizable (it stays f32
/// in the quantized plan).
#[derive(Clone, Debug, PartialEq)]
pub struct Calibration {
    pub(crate) input_absmax: f32,
    pub(crate) step_absmax: Vec<f32>,
    /// [`op_kind`] of the step each range was recorded from.
    pub(crate) kinds: Vec<u8>,
}

const CALIB_MAGIC: &[u8; 8] = b"MFACAL01";

impl Calibration {
    /// Replays `plan` serially over every batch in `batches` (each a
    /// row-major input of the plan's captured shape) and records the
    /// running abs-max of the input and of every step output.
    pub fn collect<'a, I>(plan: &Plan, batches: I) -> Result<Calibration, String>
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut input_absmax = 0.0f32;
        let mut step_absmax = vec![0.0f32; plan.steps.len()];
        let mut arena = Vec::new();
        let mut n = 0usize;
        for input in batches {
            n += 1;
            input_absmax = fold_absmax(input_absmax, input);
            run_plan_observed(plan, &mut arena, input, &mut |i, out| {
                step_absmax[i] = fold_absmax(step_absmax[i], out);
            });
        }
        if n == 0 {
            return Err("calibration needs at least one input batch".into());
        }
        Ok(Calibration {
            input_absmax,
            step_absmax,
            kinds: plan.steps.iter().map(|s| op_kind(&s.op)).collect(),
        })
    }

    /// Number of plan steps this calibration covers.
    pub fn steps(&self) -> usize {
        self.step_absmax.len()
    }

    /// Serializes to a little-endian byte blob (bitwise-deterministic):
    /// magic, step count, input range, per-step ranges, per-step kinds.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.step_absmax.len();
        let mut out = Vec::with_capacity(16 + 5 * n);
        out.extend_from_slice(CALIB_MAGIC);
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&self.input_absmax.to_le_bytes());
        for &v in &self.step_absmax {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.kinds);
        out
    }

    /// Parses [`Calibration::to_bytes`] output.
    pub fn from_bytes(b: &[u8]) -> Result<Calibration, String> {
        if b.len() < 16 || &b[..8] != CALIB_MAGIC {
            return Err("not a calibration blob (bad magic)".into());
        }
        let n = u32::from_le_bytes(b[8..12].try_into().unwrap()) as usize;
        if b.len() != 16 + 5 * n {
            return Err(format!(
                "calibration blob length mismatch: {} bytes for {n} steps",
                b.len()
            ));
        }
        let input_absmax = f32::from_le_bytes(b[12..16].try_into().unwrap());
        let step_absmax = b[16..16 + 4 * n]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Calibration {
            input_absmax,
            step_absmax,
            kinds: b[16 + 4 * n..].to_vec(),
        })
    }
}

/// Stable numeric tag of an op variant, used to align calibration
/// entries with a plan whose step list differs (batch-bucket variants
/// emit e.g. an extra positional-embedding concat at batch > 1).
fn op_kind(op: &IrOp) -> u8 {
    match op {
        IrOp::Conv2d { .. } => 0,
        IrOp::AddBiasChannel { .. } => 1,
        IrOp::AddBiasRow { .. } => 2,
        IrOp::Add { .. } => 3,
        IrOp::Sub { .. } => 4,
        IrOp::Mul { .. } => 5,
        IrOp::Neg { .. } => 6,
        IrOp::Scale { .. } => 7,
        IrOp::Relu { .. } => 8,
        IrOp::LeakyRelu { .. } => 9,
        IrOp::Sigmoid { .. } => 10,
        IrOp::Gelu { .. } => 11,
        IrOp::ChannelAffine { .. } => 12,
        IrOp::LayerNorm { .. } => 13,
        IrOp::SoftmaxLast { .. } => 14,
        IrOp::Matmul { .. } => 15,
        IrOp::Bmm { .. } => 16,
        IrOp::AttentionTm { .. } => 17,
        IrOp::AttentionFm { .. } => 18,
        IrOp::Copy { .. } => 19,
        IrOp::Permute { .. } => 20,
        IrOp::ConcatChannels { .. } => 21,
        IrOp::SliceChannels { .. } => 22,
        IrOp::Upsample2x { .. } => 23,
        IrOp::MaxPool2x2 { .. } => 24,
        IrOp::MulScalarVar { .. } => 25,
    }
}

/// Maps `calib`'s per-step ranges onto `base`'s step list: identity when
/// the op-kind sequences match exactly, an LCS pairing when they nearly
/// match (unpaired steps get a `+inf` range and stay f32), an error when
/// fewer than 90% of steps pair up (stale calibration).
fn align_calibration(calib: &Calibration, base: &Plan) -> Result<Vec<f32>, String> {
    let tgt: Vec<u8> = base.steps.iter().map(|s| op_kind(&s.op)).collect();
    if calib.kinds == tgt {
        return Ok(calib.step_absmax.clone());
    }
    let (n, m) = (calib.kinds.len(), tgt.len());
    let w = m + 1;
    // dp[i][j] = LCS length of calib.kinds[i..] and tgt[j..].
    let mut dp = vec![0u32; (n + 1) * w];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i * w + j] = if calib.kinds[i] == tgt[j] {
                dp[(i + 1) * w + j + 1] + 1
            } else {
                dp[(i + 1) * w + j].max(dp[i * w + j + 1])
            };
        }
    }
    let matched = dp[0] as usize;
    if matched * 10 < n.max(m) * 9 {
        return Err(format!(
            "calibration covers {n} steps but the plan has {m} and only {matched} align — \
             stale calibration (different checkpoint or grid): recalibrate"
        ));
    }
    let mut out = vec![f32::INFINITY; m];
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if calib.kinds[i] == tgt[j] && dp[i * w + j] == dp[(i + 1) * w + j + 1] + 1 {
            out[j] = calib.step_absmax[i];
            i += 1;
            j += 1;
        } else if dp[(i + 1) * w + j] >= dp[i * w + j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    Ok(out)
}

/// Running abs-max fold; any non-finite sample poisons the range to
/// `+inf`, which later marks the value unquantizable.
fn fold_absmax(mut acc: f32, xs: &[f32]) -> f32 {
    for &v in xs {
        if v.is_finite() {
            let a = v.abs();
            if a > acc {
                acc = a;
            }
        } else {
            acc = f32::INFINITY;
        }
    }
    acc
}

/// Symmetric per-tensor scale: `q = clamp(round(x/scale), ±127)`.
/// A zero range quantizes everything to 0 under scale 1.
fn absmax_to_scale(absmax: f32) -> f32 {
    if absmax == 0.0 {
        1.0
    } else {
        absmax / 127.0
    }
}

#[inline]
fn quantize_one(v: f32, inv_scale: f32) -> i8 {
    (v * inv_scale).round().clamp(-127.0, 127.0) as i8
}

/// Storage class of one plan value inside the quantized arena.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Store {
    F32,
    F16,
    I8 { scale: f32 },
}

impl Store {
    fn elem_bytes(self) -> usize {
        match self {
            Store::F32 => 4,
            Store::F16 => 2,
            Store::I8 { .. } => 1,
        }
    }
}

/// A byte span in the quantized arena.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ByteRange {
    pub off: usize,
    pub len: usize,
}

/// How one step executes in the quantized plan.
#[derive(Clone, Debug)]
pub(crate) enum StepPlan {
    /// Conv on the exact int8 GEMM: per-OC weight scales, fused
    /// bias/affine/ReLU dequant epilogue.
    ConvI8 {
        qw: Vec<i8>,
        wscale: Vec<f32>,
        x_scale: f32,
    },
    /// `x @ W` on the exact int8 GEMM: per-column weight scales.
    MatmulI8 {
        qb: Vec<i8>,
        bscale: Vec<f32>,
        a_scale: f32,
    },
    /// f32 fallback: dequantize operands, run [`exec_op`], requantize.
    Generic,
}

/// Counters specific to a quantized plan, surfaced by `model-info`,
/// `/metrics` and the plan summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuantStats {
    /// Step outputs stored as i8 / f16 / f32.
    pub i8_values: usize,
    pub f16_values: usize,
    pub f32_values: usize,
    /// Steps running on the int8 GEMM path (`ConvI8` + `MatmulI8`).
    pub i8_steps: usize,
    /// Steps on the dequantize→f32→requantize fallback path.
    pub generic_steps: usize,
    /// Quantized arena bytes (value spans + shared scratch region).
    pub arena_bytes: usize,
    /// The source f32 plan's arena bytes, for the ≤0.5× contract.
    pub f32_arena_bytes: usize,
    /// Bytes held by quantized weight copies (i8 data + scales).
    pub qweight_bytes: usize,
    /// Bytes of the shared per-step scratch region (included in
    /// `arena_bytes`).
    pub scratch_bytes: usize,
}

/// A quantized compiled plan: the f32 [`Plan`]'s program with an
/// int8/f16 storage layer and int8 compute for conv/linear GEMMs.
#[derive(Clone, Debug)]
pub struct QuantPlan {
    pub(crate) base: Arc<Plan>,
    pub(crate) store: Vec<Store>,
    pub(crate) spans: Vec<Option<ByteRange>>,
    pub(crate) qsteps: Vec<StepPlan>,
    /// Shared per-step scratch region at the arena tail.
    pub(crate) scratch: ByteRange,
    arena_bytes: usize,
    precision: Precision,
    stats: PlanStats,
    qstats: QuantStats,
}

impl QuantPlan {
    /// Builds a quantized plan from a compiled f32 plan and a
    /// calibration collected over the same model (any batch bucket —
    /// entries are aligned to this plan's step list by op kind; see
    /// [`Calibration`]). A calibration that does not align — e.g. from a
    /// different checkpoint or grid — is an error whose message says to
    /// recalibrate, and callers fall back to f32.
    pub fn build(
        base: Arc<Plan>,
        calib: &Calibration,
        opts: QuantOptions,
    ) -> Result<QuantPlan, String> {
        let step_absmax = align_calibration(calib, &base)?;
        let n_vals = base.values.len();

        // Per-root activation abs-max: the input from the calibration's
        // input range, every step output from its step entry.
        let mut val_absmax: Vec<Option<f32>> = vec![None; n_vals];
        val_absmax[base.input] = Some(calib.input_absmax);
        for (i, step) in base.steps.iter().enumerate() {
            val_absmax[step.out] = Some(step_absmax[i]);
        }

        // Storage classes. The output root stays f32 (the acceptance
        // contract compares f32 logits); non-finite ranges stay f32.
        let out_root = base.alias[base.output];
        let mut store = vec![Store::F32; n_vals];
        for (i, step) in base.steps.iter().enumerate() {
            let r = step.out;
            let am = step_absmax[i];
            store[r] = if r == out_root || !am.is_finite() {
                Store::F32
            } else {
                match opts.precision {
                    Precision::F16 => Store::F16,
                    Precision::Int8 => {
                        if conv_trunk(&step.op) {
                            Store::I8 {
                                scale: absmax_to_scale(am),
                            }
                        } else {
                            Store::F16
                        }
                    }
                }
            };
        }
        for v in 0..n_vals {
            if base.alias[v] != v {
                store[v] = store[base.alias[v]];
            }
        }

        // Step compilation: int8 kernel paths where eligible.
        let mut qsteps = Vec::with_capacity(base.steps.len());
        let mut qweight_bytes = 0usize;
        for step in base.steps.iter() {
            let compiled = if opts.precision == Precision::Int8 {
                compile_i8_step(&base, &val_absmax, step)
            } else {
                None
            };
            let sp = compiled.unwrap_or(StepPlan::Generic);
            match &sp {
                StepPlan::ConvI8 { qw, wscale, .. } => {
                    qweight_bytes += qw.len() + 4 * wscale.len();
                }
                StepPlan::MatmulI8 { qb, bscale, .. } => {
                    qweight_bytes += qb.len() + 4 * bscale.len();
                }
                StepPlan::Generic => {}
            }
            qsteps.push(sp);
        }

        // Byte arena: the f32 plan's level-granular liveness with
        // per-value byte sizes, plus the shared scratch tail.
        let (spans, data_bytes) = assign_byte_arena(&base, &store);
        let scratch_len = base
            .steps
            .iter()
            .zip(&qsteps)
            .map(|(step, q)| step_scratch_bytes(&base, &store, q, step))
            .max()
            .unwrap_or(0);
        let scratch = ByteRange {
            off: data_bytes,
            len: scratch_len,
        };
        let arena_bytes = data_bytes + scratch_len;

        let mut qstats = QuantStats {
            arena_bytes,
            f32_arena_bytes: base.stats().arena_bytes,
            qweight_bytes,
            scratch_bytes: scratch_len,
            ..QuantStats::default()
        };
        for step in base.steps.iter() {
            match store[step.out] {
                Store::I8 { .. } => qstats.i8_values += 1,
                Store::F16 => qstats.f16_values += 1,
                Store::F32 => qstats.f32_values += 1,
            }
        }
        for q in &qsteps {
            match q {
                StepPlan::Generic => qstats.generic_steps += 1,
                _ => qstats.i8_steps += 1,
            }
        }

        let mut stats = base.stats().clone();
        stats.arena_bytes = arena_bytes;
        stats.weight_bytes += qweight_bytes;

        Ok(QuantPlan {
            base,
            store,
            spans,
            qsteps,
            scratch,
            arena_bytes,
            precision: opts.precision,
            stats,
            qstats,
        })
    }

    /// The f32 plan this quantized plan was built from.
    pub fn base(&self) -> &Arc<Plan> {
        &self.base
    }

    /// Arena precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Plan counters with `arena_bytes`/`weight_bytes` reflecting the
    /// quantized storage (op structure counters match the f32 plan).
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// Quantization-specific counters.
    pub fn quant_stats(&self) -> &QuantStats {
        &self.qstats
    }

    /// Total arena bytes (value spans + shared scratch).
    pub fn arena_bytes(&self) -> usize {
        self.arena_bytes
    }

    /// Arena length in `u64` backing words.
    pub fn arena_words(&self) -> usize {
        self.arena_bytes.div_ceil(8)
    }

    /// Captured input shape `[B, C, H, W]`.
    pub fn input_shape(&self) -> &[usize] {
        self.base.input_shape()
    }

    /// Output shape.
    pub fn output_shape(&self) -> &[usize] {
        self.base.output_shape()
    }

    /// Elements in one forward's input.
    pub fn input_numel(&self) -> usize {
        self.base.input_numel()
    }

    /// Estimated bytes of this plan's own metadata (the base plan's
    /// metadata plus the storage/step tables). Quantized weight *data*
    /// is excluded — it is in [`QuantStats::qweight_bytes`].
    pub fn metadata_bytes(&self) -> usize {
        use std::mem::size_of;
        self.base.metadata_bytes()
            + self.store.len() * size_of::<Store>()
            + self.spans.len() * size_of::<Option<ByteRange>>()
            + self.qsteps.len() * size_of::<StepPlan>()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "quant[{}] {} ops ({} int8-gemm, {} generic); values i8/f16/f32 {}/{}/{}; arena {} B ({} B scratch) vs f32 {} B; qweights {} B",
            self.precision.name(),
            self.base.stats().ops,
            self.qstats.i8_steps,
            self.qstats.generic_steps,
            self.qstats.i8_values,
            self.qstats.f16_values,
            self.qstats.f32_values,
            self.qstats.arena_bytes,
            self.qstats.scratch_bytes,
            self.qstats.f32_arena_bytes,
            self.qstats.qweight_bytes,
        )
    }
}

/// Ops whose outputs tolerate 8-bit storage: the conv trunk. Attention /
/// normalization / softmax neighbourhoods keep f16 — their dynamic range
/// (probabilities near 0, normalized values, GELU tails) degrades badly
/// at 8 bits.
fn conv_trunk(op: &IrOp) -> bool {
    matches!(
        op,
        IrOp::Conv2d { .. }
            | IrOp::Relu { .. }
            | IrOp::LeakyRelu { .. }
            | IrOp::Add { .. }
            | IrOp::ConcatChannels { .. }
            | IrOp::SliceChannels { .. }
            | IrOp::MaxPool2x2 { .. }
            | IrOp::Upsample2x { .. }
            | IrOp::AddBiasChannel { .. }
            | IrOp::ChannelAffine { .. }
    )
}

/// Tries to compile one step onto the exact int8 GEMM path. `None`
/// means the step runs `Generic` (weight not a table entry, contraction
/// too long for exact i32, or a non-finite range somewhere).
fn compile_i8_step(base: &Plan, val_absmax: &[Option<f32>], step: &Step) -> Option<StepPlan> {
    match &step.op {
        IrOp::Conv2d {
            x,
            w,
            c,
            kh,
            kw,
            oc,
            ..
        } => {
            let k = c * kh * kw;
            if k == 0 || k > simd::I8_GEMM_MAX_K {
                return None;
            }
            let Loc::Weight(wi) = base.values[*w].loc else {
                return None;
            };
            let x_am = val_absmax[base.alias[*x]]?;
            if !x_am.is_finite() {
                return None;
            }
            let wd = base.weights[wi].data();
            let mut qw = vec![0i8; oc * k];
            let mut wscale = vec![1.0f32; *oc];
            for row in 0..*oc {
                let src = &wd[row * k..(row + 1) * k];
                let am = fold_absmax(0.0, src);
                if !am.is_finite() {
                    return None;
                }
                let s = absmax_to_scale(am);
                wscale[row] = s;
                let inv = 1.0 / s;
                for (q, &v) in qw[row * k..(row + 1) * k].iter_mut().zip(src) {
                    *q = quantize_one(v, inv);
                }
            }
            Some(StepPlan::ConvI8 {
                qw,
                wscale,
                x_scale: absmax_to_scale(x_am),
            })
        }
        IrOp::Matmul { a, b, k, n, .. } => {
            if *k == 0 || *k > simd::I8_GEMM_MAX_K {
                return None;
            }
            let Loc::Weight(wi) = base.values[*b].loc else {
                return None;
            };
            let a_am = val_absmax[base.alias[*a]]?;
            if !a_am.is_finite() {
                return None;
            }
            let wd = base.weights[wi].data();
            let mut qb = vec![0i8; k * n];
            let mut bscale = vec![1.0f32; *n];
            for j in 0..*n {
                let mut am = 0.0f32;
                for p in 0..*k {
                    am = fold_absmax(am, &wd[p * n + j..p * n + j + 1]);
                }
                if !am.is_finite() {
                    return None;
                }
                let s = absmax_to_scale(am);
                bscale[j] = s;
                let inv = 1.0 / s;
                for p in 0..*k {
                    qb[p * n + j] = quantize_one(wd[p * n + j], inv);
                }
            }
            Some(StepPlan::MatmulI8 {
                qb,
                bscale,
                a_scale: absmax_to_scale(a_am),
            })
        }
        _ => None,
    }
}

fn align8(bytes: usize) -> usize {
    (bytes + 7) & !7
}

/// Scratch bytes one step's execution carves from the shared region.
/// Must upper-bound (here: exactly match) the executor's carving.
fn step_scratch_bytes(base: &Plan, store: &[Store], q: &StepPlan, step: &Step) -> usize {
    match q {
        StepPlan::ConvI8 { .. } => {
            let IrOp::Conv2d {
                x,
                b,
                c,
                kh,
                kw,
                oc,
                oh,
                ow,
                ..
            } = &step.op
            else {
                unreachable!("ConvI8 compiles only from Conv2d");
            };
            let ncols = b * oh * ow;
            let k = c * kh * kw;
            let mut s = 0usize;
            if !matches!(store[*x], Store::I8 { .. }) {
                s += align8(base.values[*x].numel);
            }
            s += align8(k * ncols); // i8 im2col matrix
            s += align8(oc * ncols * 4); // i32 GEMM result
            s
        }
        StepPlan::MatmulI8 { .. } => {
            let IrOp::Matmul { a, m, k, n, .. } = &step.op else {
                unreachable!("MatmulI8 compiles only from Matmul");
            };
            let mut s = 0usize;
            if !matches!(store[*a], Store::I8 { .. }) {
                s += align8(m * k);
            }
            s += align8(m * n * 4);
            s
        }
        StepPlan::Generic => {
            let mut s = 0usize;
            let mut seen: Vec<ValId> = Vec::new();
            for_each_operand(&step.op, &mut |v| {
                if seen.contains(&v) {
                    return;
                }
                seen.push(v);
                if matches!(base.values[v].loc, Loc::Arena { .. })
                    && !matches!(store[v], Store::F32)
                {
                    s += align8(base.values[v].numel * 4);
                }
            });
            if !matches!(store[step.out], Store::F32) {
                s += align8(base.values[step.out].numel * 4);
            }
            match &step.op {
                IrOp::Conv2d { cols, ymat, .. } => {
                    s += align8(cols.len * 4) + align8(ymat.len * 4);
                }
                IrOp::AttentionTm { scratch, .. } | IrOp::AttentionFm { scratch, .. } => {
                    s += align8(scratch.len * 4);
                }
                _ => {}
            }
            s
        }
    }
}

/// Byte-arena assignment: the f32 plan's level-granular first-fit
/// liveness re-run with per-value byte sizes (in 64-byte blocks).
/// Returns per-value spans and the data-region byte length.
fn assign_byte_arena(base: &Plan, store: &[Store]) -> (Vec<Option<ByteRange>>, usize) {
    let values = &base.values;
    let alias = &base.alias;
    let out_root = alias[base.output];
    let mut last_level: Vec<Option<usize>> = vec![None; values.len()];
    for (li, range) in base.levels.iter().enumerate() {
        for step in &base.steps[range.clone()] {
            for_each_operand(&step.op, &mut |v| {
                last_level[alias[v]] = Some(li);
            });
        }
    }

    let mut fl = FreeList::default();
    let mut spans: Vec<Option<ByteRange>> = vec![None; values.len()];
    let mut units = vec![0usize; values.len()];
    let mut freed = vec![false; values.len()];
    for (li, range) in base.levels.iter().enumerate() {
        for step in &base.steps[range.clone()] {
            let out = step.out;
            let bytes = values[out].numel * store[out].elem_bytes();
            let u = bytes.div_ceil(BLOCK);
            let off = fl.alloc(u);
            units[out] = u;
            spans[out] = Some(ByteRange {
                off: off * BLOCK,
                len: bytes,
            });
        }
        for step in &base.steps[range.clone()] {
            let mut dying: Vec<ValId> = Vec::new();
            for_each_operand(&step.op, &mut |v| {
                let r = alias[v];
                if last_level[r] == Some(li) && r != out_root && !dying.contains(&r) {
                    dying.push(r);
                }
            });
            for r in dying {
                if let Some(sp) = spans[r] {
                    if !freed[r] {
                        fl.release(sp.off / BLOCK, units[r]);
                        freed[r] = true;
                    }
                }
            }
            let out = step.out;
            if last_level[out].is_none() && out != out_root {
                if let Some(sp) = spans[out] {
                    if !freed[out] {
                        fl.release(sp.off / BLOCK, units[out]);
                        freed[out] = true;
                    }
                }
            }
        }
    }
    for v in 0..values.len() {
        if alias[v] != v {
            spans[v] = spans[alias[v]];
            units[v] = units[alias[v]];
        }
    }
    (spans, fl.high() * BLOCK)
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Owns the mutable byte arena needed to run a [`QuantPlan`].
#[derive(Debug)]
pub struct QuantExecutor {
    plan: Arc<QuantPlan>,
    arena: Vec<u64>,
    runs: u64,
}

impl QuantExecutor {
    /// Builds an executor, allocating the byte arena once up front.
    pub fn new(plan: impl Into<Arc<QuantPlan>>) -> QuantExecutor {
        let plan = plan.into();
        let arena = vec![0u64; plan.arena_words()];
        QuantExecutor {
            plan,
            arena,
            runs: 0,
        }
    }

    /// The quantized plan this executor runs.
    pub fn plan(&self) -> &QuantPlan {
        &self.plan
    }

    /// Number of completed forwards.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Runs one forward; the returned f32 output slice is valid until the
    /// next call.
    pub fn run_batch(&mut self, input: &[f32]) -> &[f32] {
        self.runs += 1;
        run_quant_plan(&self.plan, &mut self.arena, input)
    }
}

/// Runs one forward of a quantized plan over caller-owned backing
/// storage (grown to the plan's requirement, never shrunk). Serial only:
/// all steps share the plan's single scratch region.
pub fn run_quant_plan<'a>(qp: &QuantPlan, arena: &'a mut Vec<u64>, input: &[f32]) -> &'a [f32] {
    assert_eq!(
        input.len(),
        qp.input_numel(),
        "quant plan input length mismatch (plan compiled for shape {:?})",
        qp.input_shape(),
    );
    let words = qp.arena_words();
    if arena.len() < words {
        arena.resize(words, 0);
    }
    let bytes = arena.as_mut_ptr() as *mut u8;
    for (step, q) in qp.base.steps.iter().zip(&qp.qsteps) {
        exec_quant_step(qp, input, bytes, step, q);
    }
    mfaplace_rt::timer::count("infer/quant_plan_forwards", 1);
    let out = qp.base.output;
    let sp = qp.spans[out].expect("quant plan output is arena-resident");
    debug_assert!(matches!(qp.store[out], Store::F32));
    // SAFETY: the output span is 64-byte aligned, initialized by the last
    // step, inside the arena allocation, and borrowed for `'a`.
    unsafe {
        std::slice::from_raw_parts(bytes.add(sp.off) as *const f32, qp.base.values[out].numel)
    }
}

/// Bump cursor over the plan's shared scratch region; all carves are
/// 8-byte aligned and bounds-checked against the build-time sizing.
struct Cursor {
    base: *mut u8,
    off: usize,
    end: usize,
}

impl Cursor {
    fn new(bytes: *mut u8, region: ByteRange) -> Cursor {
        Cursor {
            base: bytes,
            off: region.off,
            end: region.off + region.len,
        }
    }
}

/// Carves `n` elements of `T` from the scratch cursor.
///
/// # Safety
///
/// Every carve in one step must be from a distinct cursor range (the
/// bump guarantees it); the caller must not let two live carves alias.
unsafe fn take<'x, T>(cur: &mut Cursor, n: usize) -> &'x mut [T] {
    let sz = align8(n * std::mem::size_of::<T>());
    assert!(cur.off + sz <= cur.end, "quant scratch overflow");
    let p = cur.base.add(cur.off) as *mut T;
    cur.off += sz;
    std::slice::from_raw_parts_mut(p, n)
}

/// f32 view of value `v` when no conversion is needed: the forward
/// input, a weight-table tensor, or an f32-stored arena span.
///
/// # Safety
///
/// Arena views alias `bytes`; the caller must not hold an overlapping
/// mutable span (liveness invariant, inherited from the f32 allocator).
unsafe fn direct_f32<'x>(
    qp: &'x QuantPlan,
    input: &'x [f32],
    bytes: *const u8,
    v: ValId,
) -> Option<&'x [f32]> {
    match qp.base.values[v].loc {
        Loc::Input => Some(input),
        Loc::Weight(i) => Some(qp.base.weights[i].data()),
        Loc::Arena { .. } => match qp.store[v] {
            Store::F32 => {
                let sp = qp.spans[v].expect("f32-stored value has a span");
                Some(std::slice::from_raw_parts(
                    bytes.add(sp.off) as *const f32,
                    qp.base.values[v].numel,
                ))
            }
            _ => None,
        },
        Loc::Unassigned => unreachable!("read of a fused-away value"),
    }
}

/// i8 view of an i8-stored arena value.
unsafe fn i8_view<'x>(qp: &QuantPlan, bytes: *const u8, v: ValId) -> &'x [i8] {
    let sp = qp.spans[v].expect("i8-stored value has a span");
    std::slice::from_raw_parts(bytes.add(sp.off) as *const i8, qp.base.values[v].numel)
}

/// Dequantizes arena value `v` (f16 or i8 storage) into `dst`.
unsafe fn dequant_into(qp: &QuantPlan, bytes: *const u8, v: ValId, dst: &mut [f32]) {
    let sp = qp.spans[v].expect("quantized value has a span");
    let n = qp.base.values[v].numel;
    match qp.store[v] {
        Store::F32 => unreachable!("f32 values are viewed, not dequantized"),
        Store::F16 => {
            let src = std::slice::from_raw_parts(bytes.add(sp.off) as *const u16, n);
            for (d, &h) in dst.iter_mut().zip(src) {
                *d = f16_bits_to_f32(h);
            }
        }
        Store::I8 { scale } => {
            let src = std::slice::from_raw_parts(bytes.add(sp.off) as *const i8, n);
            for (d, &q) in dst.iter_mut().zip(src) {
                *d = f32::from(q) * scale;
            }
        }
    }
}

/// Quantizes value `v` to i8 under `inv_scale`, reading straight from
/// its storage (f32 view or f16 bits) with no f32 staging buffer.
unsafe fn quantize_value_into(
    qp: &QuantPlan,
    input: &[f32],
    bytes: *const u8,
    v: ValId,
    inv_scale: f32,
    dst: &mut [i8],
) {
    if let Some(src) = direct_f32(qp, input, bytes, v) {
        for (q, &x) in dst.iter_mut().zip(src) {
            *q = quantize_one(x, inv_scale);
        }
        return;
    }
    match qp.store[v] {
        Store::F16 => {
            let sp = qp.spans[v].expect("f16-stored value has a span");
            let src = std::slice::from_raw_parts(
                bytes.add(sp.off) as *const u16,
                qp.base.values[v].numel,
            );
            for (q, &h) in dst.iter_mut().zip(src) {
                *q = quantize_one(f16_bits_to_f32(h), inv_scale);
            }
        }
        // An i8-stored operand is read directly by the caller; f32 is
        // covered by `direct_f32` above.
        s => unreachable!("quantize from unexpected store {s:?}"),
    }
}

/// Typed mutable view of a step's destination span.
enum DstView<'x> {
    F32(&'x mut [f32]),
    F16(&'x mut [u16]),
    I8 { q: &'x mut [i8], inv: f32 },
}

/// # Safety
///
/// The destination span must be disjoint from every operand span read by
/// the same step (liveness invariant).
unsafe fn dst_view<'x>(qp: &QuantPlan, bytes: *mut u8, v: ValId) -> DstView<'x> {
    let sp = qp.spans[v].expect("step outputs are arena-resident");
    let n = qp.base.values[v].numel;
    let p = bytes.add(sp.off);
    match qp.store[v] {
        Store::F32 => DstView::F32(std::slice::from_raw_parts_mut(p as *mut f32, n)),
        Store::F16 => DstView::F16(std::slice::from_raw_parts_mut(p as *mut u16, n)),
        Store::I8 { scale } => DstView::I8 {
            q: std::slice::from_raw_parts_mut(p as *mut i8, n),
            inv: 1.0 / scale,
        },
    }
}

#[inline]
fn put(dv: &mut DstView<'_>, idx: usize, v: f32) {
    match dv {
        DstView::F32(s) => s[idx] = v,
        DstView::F16(s) => s[idx] = f32_to_f16_bits(v),
        DstView::I8 { q, inv } => q[idx] = quantize_one(v, *inv),
    }
}

/// Stores an f32 buffer into a (non-f32) destination span.
unsafe fn store_into(qp: &QuantPlan, bytes: *mut u8, v: ValId, src: &[f32]) {
    match dst_view(qp, bytes, v) {
        DstView::F32(d) => d.copy_from_slice(src),
        DstView::F16(d) => {
            for (h, &x) in d.iter_mut().zip(src) {
                *h = f32_to_f16_bits(x);
            }
        }
        DstView::I8 { q, inv } => {
            for (qq, &x) in q.iter_mut().zip(src) {
                *qq = quantize_one(x, inv);
            }
        }
    }
}

/// int8 im2col: the same gather as the f32 kernel
/// (`mfaplace_tensor::lowlevel::im2col_into`) over i8 data. `out` must
/// be zero-filled (symmetric quantization keeps zero-padding exact:
/// q=0 dequantizes to 0.0).
#[allow(clippy::too_many_arguments)]
fn im2col_i8(
    src: &[i8],
    b: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    out: &mut [i8],
) {
    let rows = c * kh * kw;
    debug_assert_eq!(out.len(), rows * b * oh * ow);
    for row in 0..rows {
        let ci = row / (kh * kw);
        let ki = (row / kw) % kh;
        let kj = row % kw;
        let out_row = &mut out[row * b * oh * ow..(row + 1) * b * oh * ow];
        for bi in 0..b {
            for oi in 0..oh {
                let iy = (oi * stride + ki) as isize - pad as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let iy = iy as usize;
                for oj in 0..ow {
                    let ix = (oj * stride + kj) as isize - pad as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    out_row[bi * oh * ow + oi * ow + oj] =
                        src[((bi * c + ci) * h + iy) * w + ix as usize];
                }
            }
        }
    }
}

fn exec_quant_step(qp: &QuantPlan, input: &[f32], bytes: *mut u8, step: &Step, q: &StepPlan) {
    match q {
        StepPlan::ConvI8 {
            qw,
            wscale,
            x_scale,
        } => {
            let IrOp::Conv2d {
                x,
                bias,
                affine,
                relu,
                stride,
                pad,
                b,
                c,
                h,
                w_in,
                kh,
                kw,
                oc,
                oh,
                ow,
                ..
            } = &step.op
            else {
                unreachable!("ConvI8 compiles only from Conv2d");
            };
            let (b, c, oc, oh, ow) = (*b, *c, *oc, *oh, *ow);
            let k = c * kh * kw;
            let ncols = b * oh * ow;
            let ohow = oh * ow;
            let mut cur = Cursor::new(bytes, qp.scratch);
            // SAFETY: carves are disjoint by the bump cursor; arena views
            // are disjoint from the scratch region and from the dst span
            // by the liveness invariant.
            unsafe {
                let qx: &[i8] = if matches!(qp.store[*x], Store::I8 { .. }) {
                    i8_view(qp, bytes, *x)
                } else {
                    let buf: &mut [i8] = take(&mut cur, qp.base.values[*x].numel);
                    quantize_value_into(qp, input, bytes, *x, 1.0 / x_scale, buf);
                    buf
                };
                let cols: &mut [i8] = take(&mut cur, k * ncols);
                cols.fill(0);
                im2col_i8(qx, b, c, *h, *w_in, *kh, *kw, *stride, *pad, oh, ow, cols);
                let ymat: &mut [i32] = take(&mut cur, oc * ncols);
                simd::i8_gemm(qw, cols, ymat, oc, k, ncols);
                let bias_s =
                    bias.map(|bv| direct_f32(qp, input, bytes, bv).expect("conv bias is a weight"));
                let mut dv = dst_view(qp, bytes, step.out);
                for ocx in 0..oc {
                    // Exact dequant factor for this output channel; the
                    // epilogue then replays the f32 epilogue's
                    // bias→affine→relu sequence per element.
                    let sc_q = x_scale * wscale[ocx];
                    let bias_v = bias_s.map(|bv| bv[ocx]);
                    let aff = affine.as_ref().map(|(sc, sh)| (sc[ocx], sh[ocx]));
                    for bi in 0..b {
                        let src_base = (ocx * b + bi) * ohow;
                        let dst_base = (bi * oc + ocx) * ohow;
                        for p in 0..ohow {
                            let mut v = ymat[src_base + p] as f32 * sc_q;
                            if let Some(bw) = bias_v {
                                v += bw;
                            }
                            if let Some((a, s)) = aff {
                                v = a * v + s;
                            }
                            if *relu {
                                v = v.max(0.0);
                            }
                            put(&mut dv, dst_base + p, v);
                        }
                    }
                }
            }
        }
        StepPlan::MatmulI8 {
            qb,
            bscale,
            a_scale,
        } => {
            let IrOp::Matmul { a, m, k, n, .. } = &step.op else {
                unreachable!("MatmulI8 compiles only from Matmul");
            };
            let (m, k, n) = (*m, *k, *n);
            let mut cur = Cursor::new(bytes, qp.scratch);
            // SAFETY: as in ConvI8.
            unsafe {
                let qa: &[i8] = if matches!(qp.store[*a], Store::I8 { .. }) {
                    i8_view(qp, bytes, *a)
                } else {
                    let buf: &mut [i8] = take(&mut cur, m * k);
                    quantize_value_into(qp, input, bytes, *a, 1.0 / a_scale, buf);
                    buf
                };
                let acc: &mut [i32] = take(&mut cur, m * n);
                simd::i8_gemm(qa, qb, acc, m, k, n);
                let mut dv = dst_view(qp, bytes, step.out);
                for i in 0..m {
                    for j in 0..n {
                        put(
                            &mut dv,
                            i * n + j,
                            acc[i * n + j] as f32 * (a_scale * bscale[j]),
                        );
                    }
                }
            }
        }
        StepPlan::Generic => {
            let mut cur = Cursor::new(bytes, qp.scratch);
            let mut operands: Vec<ValId> = Vec::new();
            for_each_operand(&step.op, &mut |v| {
                if !operands.contains(&v) {
                    operands.push(v);
                }
            });
            // SAFETY: dequant buffers are disjoint cursor carves; direct
            // views never overlap the dst span (liveness invariant).
            unsafe {
                let mut resolved: Vec<(ValId, *const f32, usize)> =
                    Vec::with_capacity(operands.len());
                for &v in &operands {
                    let view: &[f32] = match direct_f32(qp, input, bytes, v) {
                        Some(s) => s,
                        None => {
                            let buf: &mut [f32] = take(&mut cur, qp.base.values[v].numel);
                            dequant_into(qp, bytes, v, buf);
                            buf
                        }
                    };
                    resolved.push((v, view.as_ptr(), view.len()));
                }
                let out = step.out;
                let out_numel = qp.base.values[out].numel;
                let direct_out = matches!(qp.store[out], Store::F32);
                let dst: &mut [f32] = if direct_out {
                    let sp = qp.spans[out].expect("step outputs are arena-resident");
                    std::slice::from_raw_parts_mut(bytes.add(sp.off) as *mut f32, out_numel)
                } else {
                    take(&mut cur, out_numel)
                };
                let scratch = match &step.op {
                    IrOp::Conv2d { cols, ymat, .. } => OpScratch {
                        cols: Some(take(&mut cur, cols.len)),
                        ymat: Some(take(&mut cur, ymat.len)),
                        att: None,
                    },
                    IrOp::AttentionTm { scratch, .. } | IrOp::AttentionFm { scratch, .. } => {
                        OpScratch {
                            att: Some(take(&mut cur, scratch.len)),
                            ..OpScratch::default()
                        }
                    }
                    _ => OpScratch::default(),
                };
                let s = |v: ValId| -> &[f32] {
                    let &(_, p, len) = resolved
                        .iter()
                        .find(|e| e.0 == v)
                        .expect("operand resolved before exec");
                    std::slice::from_raw_parts(p, len)
                };
                exec_op(&step.op, &s, dst, scratch);
                if !direct_out {
                    store_into(qp, bytes, out, dst);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanOptions;
    use mfaplace_autograd::Graph;
    use mfaplace_tensor::Tensor;

    /// conv(3→4, relu) → sigmoid → conv(4→2): exercises an i8-stored
    /// value (conv1 out), an f16-stored value (sigmoid out, consumed by
    /// an int8 conv) and the f32 output store.
    fn conv_net(b: usize) -> (Arc<Plan>, Vec<f32>) {
        let mut g = Graph::new();
        g.set_grad_enabled(false);
        let w1 = g.param(Tensor::from_fn(vec![4, 3, 3, 3], |i| {
            (((i * 37 + 11) % 41) as f32 / 20.5 - 1.0) * 0.35
        }));
        let b1 = g.param(Tensor::from_fn(vec![4], |i| 0.05 * i as f32 - 0.1));
        let w2 = g.param(Tensor::from_fn(vec![2, 4, 1, 1], |i| {
            (((i * 53 + 5) % 29) as f32 / 14.5 - 1.0) * 0.5
        }));
        let mark = g.mark();
        let x = g.constant(Tensor::zeros(vec![b, 3, 8, 8]));
        let y = g.conv2d(x, w1, 1, 1);
        let y = g.add_bias_channel(y, b1);
        let y = g.relu(y);
        let y = g.sigmoid(y);
        let y = g.conv2d(y, w2, 1, 0);
        let plan = Plan::capture(&g, mark, x, y, PlanOptions::default()).unwrap();
        let input: Vec<f32> = (0..b * 3 * 8 * 8)
            .map(|i| (((i * 131 + 7) % 257) as f32 / 128.0 - 1.0) * 0.9)
            .collect();
        (Arc::new(plan), input)
    }

    fn max_abs(xs: &[f32]) -> f32 {
        xs.iter().fold(0.0f32, |a, &v| a.max(v.abs()))
    }

    #[test]
    fn int8_plan_tracks_f32_plan() {
        let (plan, input) = conv_net(2);
        let calib = Calibration::collect(&plan, [input.as_slice()]).unwrap();
        let qp = QuantPlan::build(plan.clone(), &calib, QuantOptions::default()).unwrap();
        assert!(qp.quant_stats().i8_steps >= 2, "{}", qp.summary());
        assert!(qp.quant_stats().i8_values >= 1, "{}", qp.summary());
        assert!(qp.quant_stats().f16_values >= 1, "{}", qp.summary());

        let mut arena = Vec::new();
        let f32_out = crate::run_plan(&plan, &mut arena, &input).to_vec();
        let mut qx = QuantExecutor::new(qp);
        let q_out = qx.run_batch(&input).to_vec();
        assert_eq!(f32_out.len(), q_out.len());
        let tol = 0.05 * max_abs(&f32_out) + 1e-3;
        for (i, (a, b)) in f32_out.iter().zip(&q_out).enumerate() {
            assert!((a - b).abs() <= tol, "elem {i}: f32 {a} vs int8 {b}");
        }
        // Re-running over the same arena must be deterministic.
        let again = qx.run_batch(&input).to_vec();
        assert_eq!(q_out, again);
    }

    #[test]
    fn f16_plan_is_close_and_arena_shrinks() {
        let (plan, input) = conv_net(1);
        let calib = Calibration::collect(&plan, [input.as_slice()]).unwrap();
        let qp = QuantPlan::build(
            plan.clone(),
            &calib,
            QuantOptions {
                precision: Precision::F16,
            },
        )
        .unwrap();
        assert_eq!(qp.quant_stats().i8_steps, 0);
        let mut arena = Vec::new();
        let f32_out = crate::run_plan(&plan, &mut arena, &input).to_vec();
        let mut qx = QuantExecutor::new(qp);
        let q_out = qx.run_batch(&input);
        let tol = 2e-3 * max_abs(&f32_out) + 1e-5;
        for (a, b) in f32_out.iter().zip(q_out) {
            assert!((a - b).abs() <= tol, "f32 {a} vs f16 {b}");
        }
    }

    #[test]
    fn int8_arena_is_at_most_half_of_f32() {
        let (plan, input) = conv_net(4);
        let calib = Calibration::collect(&plan, [input.as_slice()]).unwrap();
        let qp = QuantPlan::build(plan, &calib, QuantOptions::default()).unwrap();
        let qs = qp.quant_stats();
        assert!(
            qs.arena_bytes * 2 <= qs.f32_arena_bytes,
            "quant arena {} B vs f32 {} B — {}",
            qs.arena_bytes,
            qs.f32_arena_bytes,
            qp.summary()
        );
    }

    #[test]
    fn calibration_serializes_bitwise() {
        let (plan, input) = conv_net(1);
        let c1 = Calibration::collect(&plan, [input.as_slice()]).unwrap();
        let c2 = Calibration::collect(&plan, [input.as_slice()]).unwrap();
        assert_eq!(c1.to_bytes(), c2.to_bytes());
        let rt = Calibration::from_bytes(&c1.to_bytes()).unwrap();
        assert_eq!(rt.to_bytes(), c1.to_bytes());
        assert_eq!(rt.steps(), plan.stats().ops);
    }

    #[test]
    fn stale_calibration_is_rejected() {
        let (plan, input) = conv_net(1);
        let calib = Calibration::collect(&plan, [input.as_slice()]).unwrap();
        let stale = Calibration {
            input_absmax: calib.input_absmax,
            step_absmax: calib.step_absmax[..calib.steps() - 1].to_vec(),
            kinds: calib.kinds[..calib.steps() - 1].to_vec(),
        };
        let err = QuantPlan::build(plan, &stale, QuantOptions::default()).unwrap_err();
        assert!(err.contains("recalibrate"), "{err}");
    }
}
