//! Compiled inference plans for the `mfaplace` model zoo.
//!
//! The dynamic autograd tape re-derives shapes, re-allocates node storage
//! and re-walks Rust control flow on every forward. This crate removes all
//! of that from the inference hot path: one tape recording of a model
//! forward is captured into a [`Plan`] — a topologically ordered op list
//! with fixed shapes — which a [`PlanExecutor`] then replays with **zero
//! heap allocations per forward** from a single liveness-packed arena.
//!
//! Compilation additionally fuses `conv → bias → channel-affine → relu`
//! chains and `add → relu` pairs into single kernels (the fused epilogues
//! already exist in `mfaplace-tensor`), and can optionally fold
//! inference-mode batch norm into conv weights
//! ([`PlanOptions::fold_bn`], off by default).
//!
//! The contract, enforced by this crate's equivalence suite: with default
//! options, plan outputs are **bitwise identical** to the tape forward for
//! every zoo architecture; with `fold_bn` they agree to within 1e-6 of
//! the output scale (max-norm).
//!
//! ```
//! use mfaplace_autograd::Graph;
//! use mfaplace_infer::{Plan, PlanExecutor, PlanOptions};
//! use mfaplace_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! g.set_grad_enabled(false);
//! let w = g.param(Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0])?);
//! let mark = g.mark();
//! let x = g.constant(Tensor::zeros(vec![1, 1, 2, 2]));
//! let y = g.conv2d(x, w, 1, 0);
//! let y = g.relu(y);
//! let plan = Plan::capture(&g, mark, x, y, PlanOptions::default()).unwrap();
//! let mut exec = PlanExecutor::new(plan);
//! let out = exec.run_batch(&[1.0, -1.0, 0.5, 0.0]);
//! assert_eq!(out, &[2.0, 0.0, 1.0, 0.0]);
//! # Ok::<(), mfaplace_tensor::TensorError>(())
//! ```

mod cache;
mod exec;
mod plan;
mod quant;

pub use cache::{
    PlanCache, PlanCacheStats, PlanKey, PlanPrecision, PlanSource, DEFAULT_PLAN_CACHE_BYTES,
};
pub use exec::{
    plan_workers_from_env, plan_workers_from_str, run_plan, run_plan_workers, PlanExecutor,
};
pub use plan::{Plan, PlanOptions, PlanStats};
pub use quant::{
    run_quant_plan, Calibration, Precision, QuantExecutor, QuantOptions, QuantPlan, QuantStats,
};
