//! Shared convolutional building blocks: ResNet basic blocks (encoder
//! downsampling, Sec. III-C1) and decoder up-blocks (Sec. III-D).

use mfaplace_autograd::{Graph, Var};
use mfaplace_nn::{BatchNorm2d, Conv2d, Module};
use mfaplace_rt::rng::Rng;

/// A ResNet basic block `conv-bn-relu-conv-bn (+ projection skip) -relu`,
/// optionally downsampling by stride 2.
#[derive(Debug, Clone)]
pub struct ResBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    proj: Option<(Conv2d, BatchNorm2d)>,
}

impl ResBlock {
    /// Creates a block mapping `cin -> cout` with the given stride.
    pub fn new(g: &mut Graph, cin: usize, cout: usize, stride: usize, rng: &mut impl Rng) -> Self {
        let conv1 = Conv2d::new(g, cin, cout, 3, stride, 1, false, rng);
        let bn1 = BatchNorm2d::new(g, cout);
        let conv2 = Conv2d::new(g, cout, cout, 3, 1, 1, false, rng);
        // Zero-init residual: the block starts as its (projected) skip.
        let bn2 = BatchNorm2d::new_zero_gamma(g, cout);
        let proj = (stride != 1 || cin != cout).then(|| {
            (
                Conv2d::new(g, cin, cout, 1, stride, 0, false, rng),
                BatchNorm2d::new(g, cout),
            )
        });
        ResBlock {
            conv1,
            bn1,
            conv2,
            bn2,
            proj,
        }
    }

    /// The block's batch-norm layers in forward order.
    pub fn batch_norms(&mut self) -> Vec<&mut BatchNorm2d> {
        let mut out = vec![&mut self.bn1, &mut self.bn2];
        if let Some((_, bn)) = &mut self.proj {
            out.push(bn);
        }
        out
    }
}

impl Module for ResBlock {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        let h = self.conv1.forward(g, x, train);
        let h = self.bn1.forward(g, h, train);
        let h = g.relu(h);
        let h = self.conv2.forward(g, h, train);
        let h = self.bn2.forward(g, h, train);
        let skip = match &mut self.proj {
            Some((conv, bn)) => {
                let s = conv.forward(g, x, train);
                bn.forward(g, s, train)
            }
            None => x,
        };
        let sum = g.add(h, skip);
        g.relu(sum)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.conv1.params();
        p.extend(self.bn1.params());
        p.extend(self.conv2.params());
        p.extend(self.bn2.params());
        if let Some((conv, bn)) = &self.proj {
            p.extend(conv.params());
            p.extend(bn.params());
        }
        p
    }
}

/// A plain `conv3x3-bn-relu` stage.
#[derive(Debug, Clone)]
pub struct ConvBnRelu {
    conv: Conv2d,
    bn: BatchNorm2d,
}

impl ConvBnRelu {
    /// Creates the stage mapping `cin -> cout` at the given stride.
    pub fn new(g: &mut Graph, cin: usize, cout: usize, stride: usize, rng: &mut impl Rng) -> Self {
        ConvBnRelu {
            conv: Conv2d::new(g, cin, cout, 3, stride, 1, false, rng),
            bn: BatchNorm2d::new(g, cout),
        }
    }

    /// The stage's batch-norm layer.
    pub fn batch_norms(&mut self) -> Vec<&mut BatchNorm2d> {
        vec![&mut self.bn]
    }
}

impl Module for ConvBnRelu {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        let h = self.conv.forward(g, x, train);
        let h = self.bn.forward(g, h, train);
        g.relu(h)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.conv.params();
        p.extend(self.bn.params());
        p
    }
}

/// A decoder up-block: 2x nearest upsample, concatenation with the skip
/// feature, then `conv3x3-bn-relu` (Sec. III-D).
#[derive(Debug, Clone)]
pub struct UpBlock {
    fuse: ConvBnRelu,
}

impl UpBlock {
    /// Creates an up-block whose fused convolution maps
    /// `cin_up + cin_skip -> cout`.
    pub fn new(
        g: &mut Graph,
        cin_up: usize,
        cin_skip: usize,
        cout: usize,
        rng: &mut impl Rng,
    ) -> Self {
        UpBlock {
            fuse: ConvBnRelu::new(g, cin_up + cin_skip, cout, 1, rng),
        }
    }

    /// Applies the block; `skip` is `None` for the final full-resolution
    /// block.
    pub fn forward_with_skip(
        &mut self,
        g: &mut Graph,
        x: Var,
        skip: Option<Var>,
        train: bool,
    ) -> Var {
        let up = g.upsample2x(x);
        let merged = match skip {
            Some(s) => g.concat_channels(&[up, s]),
            None => up,
        };
        self.fuse.forward(g, merged, train)
    }

    /// Parameters of the block.
    pub fn params(&self) -> Vec<Var> {
        self.fuse.params()
    }

    /// The block's batch-norm layers.
    pub fn batch_norms(&mut self) -> Vec<&mut BatchNorm2d> {
        self.fuse.batch_norms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;
    use mfaplace_tensor::Tensor;

    #[test]
    fn resblock_downsamples_and_projects() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut block = ResBlock::new(&mut g, 4, 8, 2, &mut rng);
        let x = g.constant(Tensor::zeros(vec![1, 4, 16, 16]));
        let y = block.forward(&mut g, x, true);
        assert_eq!(g.value(y).shape(), &[1, 8, 8, 8]);
    }

    #[test]
    fn resblock_identity_skip_when_same_shape() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut block = ResBlock::new(&mut g, 4, 4, 1, &mut rng);
        // identity skip: no projection params
        assert_eq!(block.params().len(), 2 * 2 + 2); // 2 convs (1 tensor each) + 2 bns (2 each)
        let x = g.constant(Tensor::zeros(vec![1, 4, 8, 8]));
        let y = block.forward(&mut g, x, true);
        assert_eq!(g.value(y).shape(), &[1, 4, 8, 8]);
    }

    #[test]
    fn upblock_fuses_skip() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut up = UpBlock::new(&mut g, 8, 4, 6, &mut rng);
        let x = g.constant(Tensor::zeros(vec![1, 8, 4, 4]));
        let skip = g.constant(Tensor::zeros(vec![1, 4, 8, 8]));
        let y = up.forward_with_skip(&mut g, x, Some(skip), true);
        assert_eq!(g.value(y).shape(), &[1, 6, 8, 8]);
    }
}
