//! Architecture summaries reproducing the shape annotations of Figs. 2 and
//! 5 of the paper.

use crate::OursConfig;

/// One summarized stage: name and output shape `[channels, height, width]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageShape {
    /// Stage name as labelled in Fig. 5.
    pub name: String,
    /// Output channels.
    pub channels: usize,
    /// Output height.
    pub height: usize,
    /// Output width.
    pub width: usize,
}

impl StageShape {
    fn new(name: &str, channels: usize, side: usize) -> Self {
        StageShape {
            name: name.to_string(),
            channels,
            height: side,
            width: side,
        }
    }
}

/// Produces the stage-by-stage output sizes of the paper's model (Fig. 5):
/// the encoder downsampling chain, MFA blocks, transformer stage and
/// decoder up-blocks.
pub fn ours_stage_shapes(cfg: &OursConfig) -> Vec<StageShape> {
    let c = cfg.base_channels;
    let h = cfg.grid;
    let mut stages = vec![
        StageShape::new("Input (grid features)", 6, h),
        StageShape::new("Stem conv", c, h),
        StageShape::new("Down1 (ResNet)", c, h / 2),
        StageShape::new("MFA1 (skip)", c, h / 2),
        StageShape::new("Down2 (ResNet)", 2 * c, h / 4),
        StageShape::new("MFA2 (skip)", 2 * c, h / 4),
        StageShape::new("Down3 (ResNet)", 4 * c, h / 8),
        StageShape::new("MFA3 (skip)", 4 * c, h / 8),
        StageShape::new("Down4 (ResNet)", 8 * c, h / 16),
        StageShape::new("MFA4", 8 * c, h / 16),
        StageShape::new("MFA (pre-ViT)", 8 * c, h / 16),
    ];
    if cfg.vit_layers > 0 {
        stages.push(StageShape::new(
            &format!("ViT x{} ({} tokens)", cfg.vit_layers, (h / 16) * (h / 16)),
            8 * c,
            h / 16,
        ));
    }
    stages.extend([
        StageShape::new("Up1 (+MFA3 skip)", 2 * c, h / 8),
        StageShape::new("Up2 (+MFA2 skip)", c, h / 4),
        StageShape::new("Up3 (+MFA1 skip)", (c / 2).max(1), h / 2),
        StageShape::new("Up4", (c / 2).max(1), h),
        StageShape::new("Head (level logits)", 8, h),
        StageShape::new("Softmax -> congestion map", 1, h),
    ]);
    stages
}

/// Renders the stage table as aligned text (the `fig5` bench binary prints
/// this).
pub fn render_stage_table(stages: &[StageShape]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<28} {:>18}\n", "Stage", "Output size"));
    out.push_str(&format!("{:-<28} {:->18}\n", "", ""));
    for s in stages {
        out.push_str(&format!(
            "{:<28} {:>18}\n",
            s.name,
            format!("[{}, {}, {}]", s.channels, s.height, s.width)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_progression() {
        let cfg = OursConfig {
            grid: 256,
            base_channels: 16,
            vit_layers: 12,
            vit_heads: 4,
            use_mfa: true,
            mfa_reduction: 16,
        };
        let stages = ours_stage_shapes(&cfg);
        // The paper's annotated sizes at full scale.
        let down4 = stages.iter().find(|s| s.name.starts_with("Down4")).unwrap();
        assert_eq!((down4.channels, down4.height), (128, 16)); // [8C, H/16]
        let up1 = stages.iter().find(|s| s.name.starts_with("Up1")).unwrap();
        assert_eq!((up1.channels, up1.height), (32, 32)); // [2C, H/8]
        let last = stages.last().unwrap();
        assert_eq!((last.channels, last.height), (1, 256)); // 1 x H x W
    }

    #[test]
    fn render_contains_all_stages() {
        let stages = ours_stage_shapes(&OursConfig::default());
        let table = render_stage_table(&stages);
        for s in &stages {
            assert!(table.contains(&s.name), "missing stage {}", s.name);
        }
    }
}
