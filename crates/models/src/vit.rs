//! The vision-transformer stage at the U-Net bottleneck (Sec. III-C3,
//! Fig. 4): an embedding layer reshapes the `[8C, H/16, W/16]` feature into
//! `L = (H/16)(W/16)` tokens of dimension `C_t`, adds a learned positional
//! embedding, applies `L` transformer layers, and projects back to the
//! spatial feature map.

use mfaplace_autograd::{Graph, Var};
use mfaplace_nn::{Conv2d, Module, TransformerBlock};
use mfaplace_rt::rng::Rng;
use mfaplace_tensor::Tensor;

/// The complete bottleneck transformer stage.
#[derive(Debug, Clone)]
pub struct VitStage {
    embed: Conv2d,
    pos: Var,
    layers: Vec<TransformerBlock>,
    unembed: Conv2d,
    token_dim: usize,
    tokens: usize,
}

impl VitStage {
    /// Creates the stage for a `[channels, side, side]` bottleneck with
    /// `depth` transformer layers of `heads` heads (the paper uses depth 12
    /// at full scale).
    pub fn new(
        g: &mut Graph,
        channels: usize,
        side: usize,
        token_dim: usize,
        depth: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let tokens = side * side;
        VitStage {
            embed: Conv2d::new(g, channels, token_dim, 1, 1, 0, true, rng),
            pos: g.param(Tensor::randn(vec![tokens, token_dim], 0.02, rng)),
            layers: (0..depth)
                .map(|_| TransformerBlock::new(g, token_dim, heads, 2, 0.0, rng))
                .collect(),
            // Zero-init unembed + outer residual: the stage starts as the
            // identity on the bottleneck and learns its global-context
            // contribution.
            unembed: Conv2d::new_zeroed(g, token_dim, channels, 1, 1, 0, true),
            token_dim,
            tokens,
        }
    }

    /// Number of tokens `L`.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Transformer depth.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl Module for VitStage {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        let (b, _c, h, w) = g.value(x).dims4();
        assert_eq!(h * w, self.tokens, "vit token count mismatch");
        let e = self.embed.forward(g, x, train); // [B, Ct, h, w]
        let e = g.reshape(e, vec![b, self.token_dim, self.tokens]);
        let mut z = g.permute(e, &[0, 2, 1]); // [B, L, Ct]
                                              // Learned positional embedding, tiled across the batch.
        if b == 1 {
            let pos = g.reshape(self.pos, vec![1, self.tokens, self.token_dim]);
            z = g.add(z, pos);
        } else {
            let pos4 = g.reshape(self.pos, vec![1, 1, self.tokens, self.token_dim]);
            let tiles = vec![pos4; b];
            let stacked = concat_batch(g, &tiles); // [B, 1, L, Ct]
            let stacked = g.reshape(stacked, vec![b, self.tokens, self.token_dim]);
            z = g.add(z, stacked);
        }
        for layer in &mut self.layers {
            z = layer.forward(g, z, train);
        }
        let z = g.permute(z, &[0, 2, 1]); // [B, Ct, L]
        let z = g.reshape(z, vec![b, self.token_dim, h, w]);
        let projected = self.unembed.forward(g, z, train);
        g.add(projected, x)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.embed.params();
        p.push(self.pos);
        for l in &self.layers {
            p.extend(l.params());
        }
        p.extend(self.unembed.params());
        p
    }
}

/// Concatenates `[1, C, H, W]` nodes along the batch axis by permuting the
/// batch into the channel position (channel concat is the primitive).
fn concat_batch(g: &mut Graph, parts: &[Var]) -> Var {
    // [1, C, H, W] -> concat on axis 1 -> [1, B*C, H, W] -> reshape [B, C, H, W]
    let shape = g.value(parts[0]).shape().to_vec();
    let cat = g.concat_channels(parts);
    g.reshape(cat, vec![parts.len(), shape[1], shape[2], shape[3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    #[test]
    fn vit_preserves_spatial_shape() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut vit = VitStage::new(&mut g, 16, 4, 32, 2, 4, &mut rng);
        assert_eq!(vit.tokens(), 16);
        assert_eq!(vit.depth(), 2);
        let x = g.constant(Tensor::randn(vec![2, 16, 4, 4], 1.0, &mut rng));
        let y = vit.forward(&mut g, x, true);
        assert_eq!(g.value(y).shape(), &[2, 16, 4, 4]);
    }

    #[test]
    fn vit_gradients_reach_all_params() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut vit = VitStage::new(&mut g, 8, 2, 16, 1, 2, &mut rng);
        let x = g.constant(Tensor::randn(vec![1, 8, 2, 2], 1.0, &mut rng));
        let y = vit.forward(&mut g, x, true);
        let loss = g.mean(y);
        g.backward(loss);
        let missing = vit
            .params()
            .iter()
            .filter(|&&p| g.grad(p).is_none())
            .count();
        assert_eq!(missing, 0, "{missing} vit params without gradient");
    }
}
