//! Model zoo: build any of the four congestion models by name, and round-
//! trip the choice through checkpoint metadata so a `.mfaw` file is
//! self-describing — the serve subsystem and the CLI reconstruct the right
//! architecture from the file alone (format v2), or from an explicit
//! `--arch` flag for legacy v1 files.

use mfaplace_autograd::{Graph, Var};
use mfaplace_nn::checkpoint::CheckpointMeta;
use mfaplace_rt::rng::Rng;

use crate::{CongestionModel, OursConfig, OursModel, PgnnModel, Pros2Model, UNetModel};

/// The four architectures of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// The paper's MFA + transformer model.
    Ours,
    /// U-Net baseline (Szentimrey et al.).
    UNet,
    /// PGNN baseline.
    Pgnn,
    /// PROS 2.0 baseline.
    Pros2,
}

impl Arch {
    /// Parses an architecture from a CLI flag or a checkpoint's model
    /// name. Accepts both the flag spellings (`ours`, `unet`, `pgnn`,
    /// `pros2`) and the paper-table names the models report
    /// (`Ours`, `U-net`, `PGNN`, `PROS2.0`), case-insensitively.
    pub fn parse(s: &str) -> Option<Arch> {
        match s.to_ascii_lowercase().as_str() {
            "ours" => Some(Arch::Ours),
            "unet" | "u-net" => Some(Arch::UNet),
            "pgnn" => Some(Arch::Pgnn),
            "pros2" | "pros2.0" => Some(Arch::Pros2),
            _ => None,
        }
    }

    /// The name the built model reports via [`CongestionModel::name`].
    pub fn model_name(self) -> &'static str {
        match self {
            Arch::Ours => "Ours",
            Arch::UNet => "U-net",
            Arch::Pgnn => "PGNN",
            Arch::Pros2 => "PROS2.0",
        }
    }
}

impl std::str::FromStr for Arch {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Arch::parse(s)
            .ok_or_else(|| format!("unknown architecture {s:?} (want ours|unet|pgnn|pros2)"))
    }
}

/// A fully specified model architecture: which network plus every integer
/// knob needed to rebuild it with the same parameter shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchSpec {
    /// Which network.
    pub arch: Arch,
    /// Input grid side (`H = W`). Must be divisible by 16.
    pub grid: usize,
    /// Base channel count `C`.
    pub base_channels: usize,
    /// Transformer depth (Ours only; 0 disables the stage).
    pub vit_layers: usize,
    /// Attention heads per transformer layer (Ours only).
    pub vit_heads: usize,
    /// Whether MFA blocks are applied (Ours only).
    pub use_mfa: bool,
    /// MFA channel-reduction factor (Ours only).
    pub mfa_reduction: usize,
}

impl ArchSpec {
    /// Spec for `arch` at grid side `grid` with the default knobs of
    /// [`OursConfig`] (base channels 8, 3 transformer layers, 4 heads,
    /// MFA on at reduction 4).
    pub fn new(arch: Arch, grid: usize) -> Self {
        let d = OursConfig::default();
        ArchSpec {
            arch,
            grid,
            base_channels: d.base_channels,
            vit_layers: d.vit_layers,
            vit_heads: d.vit_heads,
            use_mfa: d.use_mfa,
            mfa_reduction: d.mfa_reduction,
        }
    }

    /// Spec equivalent to building [`OursModel`] with `cfg`.
    pub fn from_ours(cfg: OursConfig) -> Self {
        ArchSpec {
            arch: Arch::Ours,
            grid: cfg.grid,
            base_channels: cfg.base_channels,
            vit_layers: cfg.vit_layers,
            vit_heads: cfg.vit_heads,
            use_mfa: cfg.use_mfa,
            mfa_reduction: cfg.mfa_reduction,
        }
    }

    /// The [`OursConfig`] this spec describes.
    pub fn ours_config(&self) -> OursConfig {
        OursConfig {
            grid: self.grid,
            base_channels: self.base_channels,
            vit_layers: self.vit_layers,
            vit_heads: self.vit_heads,
            use_mfa: self.use_mfa,
            mfa_reduction: self.mfa_reduction,
        }
    }

    /// Serializes the spec as checkpoint-v2 metadata.
    pub fn to_meta(&self) -> CheckpointMeta {
        CheckpointMeta::new(self.arch.model_name())
            .with("grid", self.grid as u32)
            .with("base_channels", self.base_channels as u32)
            .with("vit_layers", self.vit_layers as u32)
            .with("vit_heads", self.vit_heads as u32)
            .with("use_mfa", u32::from(self.use_mfa))
            .with("mfa_reduction", self.mfa_reduction as u32)
    }

    /// Reconstructs a spec from checkpoint-v2 metadata.
    ///
    /// # Errors
    ///
    /// Returns an error naming the problem if the model name is unknown or
    /// a required entry (`grid`, `base_channels`) is missing.
    pub fn from_meta(meta: &CheckpointMeta) -> Result<Self, String> {
        let arch = Arch::parse(&meta.model)
            .ok_or_else(|| format!("checkpoint names unknown model {:?}", meta.model))?;
        let need = |key: &str| {
            meta.get(key)
                .map(|v| v as usize)
                .ok_or_else(|| format!("checkpoint metadata is missing {key:?}"))
        };
        let mut spec = ArchSpec::new(arch, need("grid")?);
        spec.base_channels = need("base_channels")?;
        if let Some(v) = meta.get("vit_layers") {
            spec.vit_layers = v as usize;
        }
        if let Some(v) = meta.get("vit_heads") {
            spec.vit_heads = v as usize;
        }
        if let Some(v) = meta.get("use_mfa") {
            spec.use_mfa = v != 0;
        }
        if let Some(v) = meta.get("mfa_reduction") {
            spec.mfa_reduction = v as usize;
        }
        Ok(spec)
    }

    /// Builds the model, registering fresh parameters on `g`.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec is not buildable (grid not divisible
    /// by 16, or zero channels).
    pub fn build(&self, g: &mut Graph, rng: &mut impl Rng) -> Result<AnyModel, String> {
        if self.grid == 0 || !self.grid.is_multiple_of(16) {
            return Err(format!(
                "grid {} is not divisible by 16 (all models downsample 4x)",
                self.grid
            ));
        }
        if self.base_channels == 0 {
            return Err("base_channels must be positive".into());
        }
        Ok(match self.arch {
            Arch::Ours => AnyModel::Ours(OursModel::new(g, self.ours_config(), rng)),
            Arch::UNet => AnyModel::UNet(UNetModel::new(g, self.base_channels, rng)),
            Arch::Pgnn => AnyModel::Pgnn(PgnnModel::new(g, self.base_channels, rng)),
            Arch::Pros2 => AnyModel::Pros2(Pros2Model::new(g, self.base_channels, rng)),
        })
    }
}

/// Any of the four congestion models behind one concrete type, so loaders
/// can pick the architecture at runtime (from checkpoint metadata or a CLI
/// flag) and still hand a single [`CongestionModel`] to downstream code.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // built once per process, never stored in bulk
pub enum AnyModel {
    /// The paper's MFA + transformer model.
    Ours(OursModel),
    /// U-Net baseline.
    UNet(UNetModel),
    /// PGNN baseline.
    Pgnn(PgnnModel),
    /// PROS 2.0 baseline.
    Pros2(Pros2Model),
}

impl CongestionModel for AnyModel {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        match self {
            AnyModel::Ours(m) => m.forward(g, x, train),
            AnyModel::UNet(m) => m.forward(g, x, train),
            AnyModel::Pgnn(m) => m.forward(g, x, train),
            AnyModel::Pros2(m) => m.forward(g, x, train),
        }
    }

    fn params(&self) -> Vec<Var> {
        match self {
            AnyModel::Ours(m) => m.params(),
            AnyModel::UNet(m) => m.params(),
            AnyModel::Pgnn(m) => m.params(),
            AnyModel::Pros2(m) => m.params(),
        }
    }

    fn name(&self) -> &str {
        match self {
            AnyModel::Ours(m) => m.name(),
            AnyModel::UNet(m) => m.name(),
            AnyModel::Pgnn(m) => m.name(),
            AnyModel::Pros2(m) => m.name(),
        }
    }

    fn batch_norms(&mut self) -> Vec<&mut mfaplace_nn::BatchNorm2d> {
        match self {
            AnyModel::Ours(m) => m.batch_norms(),
            AnyModel::UNet(m) => m.batch_norms(),
            AnyModel::Pgnn(m) => m.batch_norms(),
            AnyModel::Pros2(m) => m.batch_norms(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::{SeedableRng, StdRng};
    use mfaplace_tensor::Tensor;

    #[test]
    fn arch_parses_flags_and_model_names() {
        assert_eq!(Arch::parse("ours"), Some(Arch::Ours));
        assert_eq!(Arch::parse("U-net"), Some(Arch::UNet));
        assert_eq!(Arch::parse("PGNN"), Some(Arch::Pgnn));
        assert_eq!(Arch::parse("PROS2.0"), Some(Arch::Pros2));
        assert_eq!(Arch::parse("resnet"), None);
        assert!("resnet".parse::<Arch>().is_err());
    }

    #[test]
    fn spec_round_trips_through_meta() {
        let mut spec = ArchSpec::new(Arch::Ours, 32);
        spec.base_channels = 4;
        spec.vit_layers = 1;
        spec.vit_heads = 2;
        spec.use_mfa = false;
        let meta = spec.to_meta();
        assert_eq!(meta.model, "Ours");
        assert_eq!(ArchSpec::from_meta(&meta).unwrap(), spec);
    }

    #[test]
    fn from_meta_requires_grid() {
        let meta = CheckpointMeta::new("UNet").with("base_channels", 4);
        let err = ArchSpec::from_meta(&meta).unwrap_err();
        assert!(err.contains("grid"), "{err}");
    }

    #[test]
    fn build_rejects_bad_grid() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let spec = ArchSpec::new(Arch::UNet, 24);
        assert!(spec.build(&mut g, &mut rng).is_err());
    }

    #[test]
    fn every_arch_builds_and_runs() {
        for arch in [Arch::Ours, Arch::UNet, Arch::Pgnn, Arch::Pros2] {
            let mut g = Graph::new();
            let mut rng = StdRng::seed_from_u64(1);
            let mut spec = ArchSpec::new(arch, 32);
            spec.base_channels = 4;
            spec.vit_layers = 1;
            spec.vit_heads = 2;
            let mut model = spec.build(&mut g, &mut rng).unwrap();
            assert_eq!(model.name(), arch.model_name());
            assert!(!model.params().is_empty());
            let x = g.constant(Tensor::zeros(vec![1, 6, 32, 32]));
            let y = model.forward(&mut g, x, false);
            assert_eq!(g.value(y).shape(), &[1, 8, 32, 32]);
        }
    }
}
