//! The U-Net baseline \[6\]: plain conv-bn-relu encoder levels with max
//! pooling, a convolutional bottleneck, and upsample+skip decoder levels —
//! no residual blocks, no attention, no transformer.

use mfaplace_autograd::{Graph, Var};
use mfaplace_nn::{Conv2d, Module};
use mfaplace_rt::rng::Rng;

use crate::blocks::{ConvBnRelu, UpBlock};
use crate::model::{CongestionModel, NUM_LEVEL_CLASSES};

/// The U-Net congestion predictor.
#[derive(Debug, Clone)]
pub struct UNetModel {
    enc1: ConvBnRelu,
    enc2: ConvBnRelu,
    enc3: ConvBnRelu,
    enc4: ConvBnRelu,
    bottleneck: ConvBnRelu,
    up1: UpBlock,
    up2: UpBlock,
    up3: UpBlock,
    up4: UpBlock,
    head: Conv2d,
}

impl UNetModel {
    /// Builds the model with base channel count `c`.
    pub fn new(g: &mut Graph, c: usize, rng: &mut impl Rng) -> Self {
        UNetModel {
            enc1: ConvBnRelu::new(g, 6, c, 1, rng),
            enc2: ConvBnRelu::new(g, c, 2 * c, 1, rng),
            enc3: ConvBnRelu::new(g, 2 * c, 4 * c, 1, rng),
            enc4: ConvBnRelu::new(g, 4 * c, 8 * c, 1, rng),
            bottleneck: ConvBnRelu::new(g, 8 * c, 8 * c, 1, rng),
            up1: UpBlock::new(g, 8 * c, 8 * c, 4 * c, rng),
            up2: UpBlock::new(g, 4 * c, 4 * c, 2 * c, rng),
            up3: UpBlock::new(g, 2 * c, 2 * c, c, rng),
            up4: UpBlock::new(g, c, c, c, rng),
            head: Conv2d::new(g, c, NUM_LEVEL_CLASSES, 1, 1, 0, true, rng),
        }
    }
}

impl CongestionModel for UNetModel {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        let e1 = self.enc1.forward(g, x, train); // [C, H]
        let p1 = g.maxpool2x2(e1);
        let e2 = self.enc2.forward(g, p1, train); // [2C, H/2]
        let p2 = g.maxpool2x2(e2);
        let e3 = self.enc3.forward(g, p2, train); // [4C, H/4]
        let p3 = g.maxpool2x2(e3);
        let e4 = self.enc4.forward(g, p3, train); // [8C, H/8]
        let p4 = g.maxpool2x2(e4);
        let b = self.bottleneck.forward(g, p4, train); // [8C, H/16]
        let u1 = self.up1.forward_with_skip(g, b, Some(e4), train);
        let u2 = self.up2.forward_with_skip(g, u1, Some(e3), train);
        let u3 = self.up3.forward_with_skip(g, u2, Some(e2), train);
        let u4 = self.up4.forward_with_skip(g, u3, Some(e1), train);
        self.head.forward(g, u4, train)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.enc1.params();
        p.extend(self.enc2.params());
        p.extend(self.enc3.params());
        p.extend(self.enc4.params());
        p.extend(self.bottleneck.params());
        for up in [&self.up1, &self.up2, &self.up3, &self.up4] {
            p.extend(up.params());
        }
        p.extend(self.head.params());
        p
    }

    fn name(&self) -> &str {
        "U-net"
    }

    fn batch_norms(&mut self) -> Vec<&mut mfaplace_nn::BatchNorm2d> {
        let mut out = self.enc1.batch_norms();
        out.extend(self.enc2.batch_norms());
        out.extend(self.enc3.batch_norms());
        out.extend(self.enc4.batch_norms());
        out.extend(self.bottleneck.batch_norms());
        for up in [&mut self.up1, &mut self.up2, &mut self.up3, &mut self.up4] {
            out.extend(up.batch_norms());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;
    use mfaplace_tensor::Tensor;

    #[test]
    fn unet_shape() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = UNetModel::new(&mut g, 4, &mut rng);
        let x = g.constant(Tensor::randn(vec![1, 6, 32, 32], 1.0, &mut rng));
        let y = model.forward(&mut g, x, true);
        assert_eq!(g.value(y).shape(), &[1, 8, 32, 32]);
        assert_eq!(model.name(), "U-net");
    }
}
