//! The PROS 2.0 baseline \[8\]: a ResNet encoder (two basic blocks per
//! level) with a U-Net decoder — stronger local feature extraction than
//! plain U-Net, but no attention and no global (transformer) stage.

use mfaplace_autograd::{Graph, Var};
use mfaplace_nn::{Conv2d, Module};
use mfaplace_rt::rng::Rng;

use crate::blocks::{ConvBnRelu, ResBlock, UpBlock};
use crate::model::{CongestionModel, NUM_LEVEL_CLASSES};

/// The PROS 2.0 congestion predictor.
#[derive(Debug, Clone)]
pub struct Pros2Model {
    stem: ConvBnRelu,
    levels: Vec<(ResBlock, ResBlock)>,
    up1: UpBlock,
    up2: UpBlock,
    up3: UpBlock,
    up4: UpBlock,
    head: Conv2d,
}

impl Pros2Model {
    /// Builds the model with base channel count `c`.
    pub fn new(g: &mut Graph, c: usize, rng: &mut impl Rng) -> Self {
        let widths = [(6usize, c), (c, 2 * c), (2 * c, 4 * c), (4 * c, 8 * c)];
        let stem = ConvBnRelu::new(g, 6, 6, 1, rng);
        let levels = widths
            .iter()
            .map(|&(cin, cout)| {
                (
                    ResBlock::new(g, cin, cout, 2, rng),
                    ResBlock::new(g, cout, cout, 1, rng),
                )
            })
            .collect();
        Pros2Model {
            stem,
            levels,
            up1: UpBlock::new(g, 8 * c, 4 * c, 4 * c, rng),
            up2: UpBlock::new(g, 4 * c, 2 * c, 2 * c, rng),
            up3: UpBlock::new(g, 2 * c, c, c, rng),
            up4: UpBlock::new(g, c, 0, c, rng),
            head: Conv2d::new(g, c, NUM_LEVEL_CLASSES, 1, 1, 0, true, rng),
        }
    }
}

impl CongestionModel for Pros2Model {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        let mut h = self.stem.forward(g, x, train);
        let mut skips = Vec::with_capacity(4);
        for (down, refine) in &mut self.levels {
            h = down.forward(g, h, train);
            h = refine.forward(g, h, train);
            skips.push(h);
        }
        // skips: [C,H/2], [2C,H/4], [4C,H/8], [8C,H/16]
        let u1 = self
            .up1
            .forward_with_skip(g, skips[3], Some(skips[2]), train);
        let u2 = self.up2.forward_with_skip(g, u1, Some(skips[1]), train);
        let u3 = self.up3.forward_with_skip(g, u2, Some(skips[0]), train);
        let u4 = self.up4.forward_with_skip(g, u3, None, train);
        self.head.forward(g, u4, train)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.stem.params();
        for (a, b) in &self.levels {
            p.extend(a.params());
            p.extend(b.params());
        }
        for up in [&self.up1, &self.up2, &self.up3, &self.up4] {
            p.extend(up.params());
        }
        p.extend(self.head.params());
        p
    }

    fn name(&self) -> &str {
        "PROS2.0"
    }

    fn batch_norms(&mut self) -> Vec<&mut mfaplace_nn::BatchNorm2d> {
        let mut out = self.stem.batch_norms();
        for (a, b) in &mut self.levels {
            out.extend(a.batch_norms());
            out.extend(b.batch_norms());
        }
        for up in [&mut self.up1, &mut self.up2, &mut self.up3, &mut self.up4] {
            out.extend(up.batch_norms());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;
    use mfaplace_tensor::Tensor;

    #[test]
    fn pros2_shape() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Pros2Model::new(&mut g, 4, &mut rng);
        let x = g.constant(Tensor::randn(vec![1, 6, 32, 32], 1.0, &mut rng));
        let y = model.forward(&mut g, x, true);
        assert_eq!(g.value(y).shape(), &[1, 8, 32, 32]);
        assert_eq!(model.name(), "PROS2.0");
    }

    #[test]
    fn pros2_deeper_than_unet() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let pros2 = Pros2Model::new(&mut g, 4, &mut rng);
        let unet = crate::UNetModel::new(&mut g, 4, &mut rng);
        assert!(pros2.params().len() > unet.params().len());
    }
}
