//! The PGNN baseline \[7\]: pin-accessibility information from a pin
//! proximity graph feeding a U-Net.
//!
//! PGNN builds a graph over pins and runs a GNN whose per-pin embeddings
//! are rasterized into extra U-Net input channels. On the grid substrate
//! the pin-proximity graph is the 8-neighbour tile graph weighted by pin
//! density, so the GNN's message passing is modelled as `K` rounds of
//! neighbour aggregation over that graph implemented exactly (a fixed
//! 3x3 adjacency convolution per round) followed by *learned* 1x1 channel
//! mixing — the learnable part of the aggregation. See `DESIGN.md` for the
//! substitution note.

use mfaplace_autograd::{Graph, Var};
use mfaplace_nn::{Conv2d, Module};
use mfaplace_rt::rng::Rng;
use mfaplace_tensor::Tensor;

use crate::model::CongestionModel;
use crate::unet::UNetModel;

/// Number of message-passing rounds.
const GNN_ROUNDS: usize = 2;

/// The PGNN congestion predictor.
#[derive(Debug, Clone)]
pub struct PgnnModel {
    /// Learned mixing after each aggregation round.
    mixes: Vec<Conv2d>,
    /// Projects 6 raw + aggregated channels back to the 6-channel U-Net
    /// input contract.
    fuse: Conv2d,
    unet: UNetModel,
}

impl PgnnModel {
    /// Builds the model with U-Net base channels `c`.
    pub fn new(g: &mut Graph, c: usize, rng: &mut impl Rng) -> Self {
        PgnnModel {
            mixes: (0..GNN_ROUNDS)
                .map(|_| Conv2d::new(g, 6, 6, 1, 1, 0, true, rng))
                .collect(),
            fuse: Conv2d::new(g, 12, 6, 1, 1, 0, true, rng),
            unet: UNetModel::new(g, c, rng),
        }
    }
}

/// One neighbour-aggregation round over the 8-neighbour tile graph: a fixed
/// normalized 3x3 box kernel applied depthwise (non-trainable).
fn aggregate(g: &mut Graph, x: Var) -> Var {
    let (_, ch, _, _) = g.value(x).dims4();
    let mut w = Tensor::zeros(vec![ch, ch, 3, 3]);
    for c in 0..ch {
        for ky in 0..3 {
            for kx in 0..3 {
                w.set(&[c, c, ky, kx], 1.0 / 9.0);
            }
        }
    }
    let wv = g.constant(w);
    g.conv2d(x, wv, 1, 1)
}

impl CongestionModel for PgnnModel {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        // GNN part: aggregation + learned mixing rounds, producing pin
        // accessibility embeddings.
        let mut h = x;
        for mix in &mut self.mixes {
            let agg = aggregate(g, h);
            let mixed = mix.forward(g, agg, train);
            h = g.relu(mixed);
        }
        // Concatenate raw features with embeddings, fuse, run U-Net.
        let cat = g.concat_channels(&[x, h]);
        let fused = self.fuse.forward(g, cat, train);
        self.unet.forward(g, fused, train)
    }

    fn params(&self) -> Vec<Var> {
        let mut p: Vec<Var> = self.mixes.iter().flat_map(Conv2d::params).collect();
        p.extend(self.fuse.params());
        p.extend(self.unet.params());
        p
    }

    fn name(&self) -> &str {
        "PGNN"
    }

    fn batch_norms(&mut self) -> Vec<&mut mfaplace_nn::BatchNorm2d> {
        self.unet.batch_norms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    #[test]
    fn pgnn_shape() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = PgnnModel::new(&mut g, 4, &mut rng);
        let x = g.constant(Tensor::randn(vec![1, 6, 32, 32], 1.0, &mut rng));
        let y = model.forward(&mut g, x, true);
        assert_eq!(g.value(y).shape(), &[1, 8, 32, 32]);
    }

    #[test]
    fn aggregation_averages_neighbours() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let _model = PgnnModel::new(&mut g, 4, &mut rng);
        // A single hot pixel spreads to its 3x3 neighbourhood.
        let mut xt = Tensor::zeros(vec![1, 6, 5, 5]);
        xt.set(&[0, 0, 2, 2], 9.0);
        let x = g.constant(xt);
        let y = aggregate(&mut g, x);
        assert!((g.value(y).at(&[0, 0, 2, 2]) - 1.0).abs() < 1e-5);
        assert!((g.value(y).at(&[0, 0, 1, 1]) - 1.0).abs() < 1e-5);
        assert_eq!(g.value(y).at(&[0, 0, 4, 4]), 0.0);
        // Other channels untouched (depthwise).
        assert_eq!(g.value(y).at(&[0, 1, 2, 2]), 0.0);
    }

    #[test]
    fn pgnn_has_more_params_than_unet() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(2);
        let pgnn = PgnnModel::new(&mut g, 4, &mut rng);
        let unet = UNetModel::new(&mut g, 4, &mut rng);
        assert!(pgnn.params().len() > unet.params().len());
    }
}
