//! The paper's full congestion-prediction model (Figs. 2 and 5).
//!
//! Encoder: four ResNet CNN layers halving the resolution and doubling the
//! channels (`C, 2C, 4C, 8C` at `H/2 .. H/16`), each followed by an MFA
//! block on the skip connection, plus one more MFA block before the vision
//! transformer stage at the bottleneck. Decoder: four up-blocks fusing the
//! MFA-enhanced skips, ending in an 8-class (`levels 0..=7`) pixel
//! classifier.
//!
//! [`OursConfig`] exposes the paper's two design knobs as ablations:
//! `use_mfa` (MFA blocks on skips/bottleneck vs identity) and `vit_layers`
//! (0 disables the transformer stage).

use mfaplace_autograd::{Graph, Var};
use mfaplace_nn::{Conv2d, Module};
use mfaplace_rt::rng::Rng;

use crate::blocks::{ConvBnRelu, ResBlock, UpBlock};
use crate::mfa::MfaBlock;
use crate::model::{CongestionModel, NUM_LEVEL_CLASSES};
use crate::vit::VitStage;

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OursConfig {
    /// Input grid side (`H = W`); the paper uses 256, the scaled
    /// experiments 64.
    pub grid: usize,
    /// Base channel count `C` (the paper's figure annotates `C`; the scaled
    /// experiments use 8).
    pub base_channels: usize,
    /// Transformer depth `L` (paper: 12; 0 disables the stage).
    pub vit_layers: usize,
    /// Attention heads in each transformer layer.
    pub vit_heads: usize,
    /// Whether MFA blocks are applied (ablation knob).
    pub use_mfa: bool,
    /// MFA channel-reduction factor (paper: 16; scaled runs use less so the
    /// reduced feature keeps multiple channels).
    pub mfa_reduction: usize,
}

impl Default for OursConfig {
    fn default() -> Self {
        OursConfig {
            grid: 64,
            base_channels: 8,
            vit_layers: 3,
            vit_heads: 4,
            use_mfa: true,
            mfa_reduction: 4,
        }
    }
}

/// The MFA + transformer congestion-prediction model.
#[derive(Debug, Clone)]
pub struct OursModel {
    config: OursConfig,
    name: String,
    down1: ResBlock,
    down2: ResBlock,
    down3: ResBlock,
    down4: ResBlock,
    mfa1: Option<MfaBlock>,
    mfa2: Option<MfaBlock>,
    mfa3: Option<MfaBlock>,
    mfa4: Option<MfaBlock>,
    mfa_pre_vit: Option<MfaBlock>,
    vit: Option<VitStage>,
    up1: UpBlock,
    up2: UpBlock,
    up3: UpBlock,
    up4: UpBlock,
    head: Conv2d,
    stem: ConvBnRelu,
}

impl OursModel {
    /// Builds the model, registering all parameters on `g`.
    ///
    /// # Panics
    ///
    /// Panics if `config.grid` is not divisible by 16.
    pub fn new(g: &mut Graph, config: OursConfig, rng: &mut impl Rng) -> Self {
        assert_eq!(config.grid % 16, 0, "grid must be divisible by 16");
        let c = config.base_channels;
        let stem = ConvBnRelu::new(g, 6, c, 1, rng);
        let down1 = ResBlock::new(g, c, c, 2, rng);
        let down2 = ResBlock::new(g, c, 2 * c, 2, rng);
        let down3 = ResBlock::new(g, 2 * c, 4 * c, 2, rng);
        let down4 = ResBlock::new(g, 4 * c, 8 * c, 2, rng);
        let red = config.mfa_reduction;
        let mfa1 = config
            .use_mfa
            .then(|| MfaBlock::with_reduction(g, c, red, rng));
        let mfa2 = config
            .use_mfa
            .then(|| MfaBlock::with_reduction(g, 2 * c, red, rng));
        let mfa3 = config
            .use_mfa
            .then(|| MfaBlock::with_reduction(g, 4 * c, red, rng));
        let mfa4 = config
            .use_mfa
            .then(|| MfaBlock::with_reduction(g, 8 * c, red, rng));
        let mfa_pre_vit = config
            .use_mfa
            .then(|| MfaBlock::with_reduction(g, 8 * c, red, rng));
        let vit = (config.vit_layers > 0).then(|| {
            VitStage::new(
                g,
                8 * c,
                config.grid / 16,
                8 * c,
                config.vit_layers,
                config.vit_heads,
                rng,
            )
        });
        // Decoder widths per Fig. 5: [2C, H/8], [C, H/4], [C/2, H/2], 8 @ H.
        let up1 = UpBlock::new(g, 8 * c, 4 * c, 2 * c, rng);
        let up2 = UpBlock::new(g, 2 * c, 2 * c, c, rng);
        let up3 = UpBlock::new(g, c, c, (c / 2).max(1), rng);
        let up4 = UpBlock::new(g, (c / 2).max(1), 0, (c / 2).max(1), rng);
        let head = Conv2d::new(g, (c / 2).max(1), NUM_LEVEL_CLASSES, 1, 1, 0, true, rng);
        let name = match (config.use_mfa, config.vit_layers > 0) {
            (true, true) => "Ours".to_string(),
            (false, true) => "Ours-noMFA".to_string(),
            (true, false) => "Ours-noViT".to_string(),
            (false, false) => "Ours-backbone".to_string(),
        };
        OursModel {
            config,
            name,
            down1,
            down2,
            down3,
            down4,
            mfa1,
            mfa2,
            mfa3,
            mfa4,
            mfa_pre_vit,
            vit,
            up1,
            up2,
            up3,
            up4,
            head,
            stem,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &OursConfig {
        &self.config
    }
}

fn maybe(g: &mut Graph, block: &mut Option<MfaBlock>, x: Var, train: bool) -> Var {
    match block {
        Some(b) => b.forward(g, x, train),
        None => x,
    }
}

impl CongestionModel for OursModel {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        let s = self.stem.forward(g, x, train); // [C, H, W]
        let d1 = self.down1.forward(g, s, train); // [C, H/2]
        let d2 = self.down2.forward(g, d1, train); // [2C, H/4]
        let d3 = self.down3.forward(g, d2, train); // [4C, H/8]
        let d4 = self.down4.forward(g, d3, train); // [8C, H/16]
        let s1 = maybe(g, &mut self.mfa1, d1, train);
        let s2 = maybe(g, &mut self.mfa2, d2, train);
        let s3 = maybe(g, &mut self.mfa3, d3, train);
        let s4 = maybe(g, &mut self.mfa4, d4, train);
        let pre = maybe(g, &mut self.mfa_pre_vit, s4, train);
        let bottleneck = match &mut self.vit {
            Some(vit) => vit.forward(g, pre, train),
            None => pre,
        };
        let u1 = self.up1.forward_with_skip(g, bottleneck, Some(s3), train); // [2C, H/8]
        let u2 = self.up2.forward_with_skip(g, u1, Some(s2), train); // [C, H/4]
        let u3 = self.up3.forward_with_skip(g, u2, Some(s1), train); // [C/2, H/2]
        let u4 = self.up4.forward_with_skip(g, u3, None, train); // [C/2, H]
        self.head.forward(g, u4, train) // [8, H, W]
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.stem.params();
        for blk in [&self.down1, &self.down2, &self.down3, &self.down4] {
            p.extend(blk.params());
        }
        for mfa in [
            &self.mfa1,
            &self.mfa2,
            &self.mfa3,
            &self.mfa4,
            &self.mfa_pre_vit,
        ]
        .into_iter()
        .flatten()
        {
            p.extend(mfa.params());
        }
        if let Some(vit) = &self.vit {
            p.extend(vit.params());
        }
        for up in [&self.up1, &self.up2, &self.up3, &self.up4] {
            p.extend(up.params());
        }
        p.extend(self.head.params());
        p
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn batch_norms(&mut self) -> Vec<&mut mfaplace_nn::BatchNorm2d> {
        // Same traversal order as `params`; the MFA and ViT stages carry no
        // batch norm.
        let mut out = self.stem.batch_norms();
        for blk in [
            &mut self.down1,
            &mut self.down2,
            &mut self.down3,
            &mut self.down4,
        ] {
            out.extend(blk.batch_norms());
        }
        for up in [&mut self.up1, &mut self.up2, &mut self.up3, &mut self.up4] {
            out.extend(up.batch_norms());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;
    use mfaplace_tensor::Tensor;

    fn tiny_cfg() -> OursConfig {
        OursConfig {
            grid: 32,
            base_channels: 4,
            vit_layers: 1,
            vit_heads: 2,
            use_mfa: true,
            mfa_reduction: 16,
        }
    }

    #[test]
    fn forward_shape_matches_fig5() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = OursModel::new(&mut g, tiny_cfg(), &mut rng);
        let x = g.constant(Tensor::randn(vec![2, 6, 32, 32], 1.0, &mut rng));
        let y = model.forward(&mut g, x, true);
        assert_eq!(g.value(y).shape(), &[2, 8, 32, 32]);
    }

    #[test]
    fn ablations_change_name_and_params() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let full = OursModel::new(&mut g, tiny_cfg(), &mut rng);
        let no_mfa = OursModel::new(
            &mut g,
            OursConfig {
                use_mfa: false,
                ..tiny_cfg()
            },
            &mut rng,
        );
        let no_vit = OursModel::new(
            &mut g,
            OursConfig {
                vit_layers: 0,
                ..tiny_cfg()
            },
            &mut rng,
        );
        assert_eq!(full.name(), "Ours");
        assert_eq!(no_mfa.name(), "Ours-noMFA");
        assert_eq!(no_vit.name(), "Ours-noViT");
        assert!(full.params().len() > no_mfa.params().len());
        assert!(full.params().len() > no_vit.params().len());
    }

    #[test]
    fn all_params_receive_gradients() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = OursModel::new(&mut g, tiny_cfg(), &mut rng);
        let x = g.constant(Tensor::randn(vec![1, 6, 32, 32], 1.0, &mut rng));
        let logits = model.forward(&mut g, x, true);
        let labels = vec![1u8; 32 * 32];
        let loss = g.cross_entropy2d(logits, &labels, None);
        g.backward(loss);
        let missing = model
            .params()
            .iter()
            .filter(|&&p| g.grad(p).is_none())
            .count();
        assert_eq!(missing, 0, "{missing} params without gradient");
    }

    #[test]
    fn one_training_step_reduces_loss() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = OursModel::new(&mut g, tiny_cfg(), &mut rng);
        let mut opt = mfaplace_nn::Adam::new(2e-3);
        let params = model.params();
        let mark = g.mark();
        let xt = Tensor::randn(vec![1, 6, 32, 32], 1.0, &mut rng);
        let labels = vec![2u8; 32 * 32];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..5 {
            let x = g.constant(xt.clone());
            let logits = model.forward(&mut g, x, true);
            let loss = g.cross_entropy2d(logits, &labels, None);
            last = g.value(loss).item();
            first.get_or_insert(last);
            g.zero_grads();
            g.backward(loss);
            opt.step(&mut g, &params);
            g.truncate(mark);
        }
        assert!(
            last < first.unwrap(),
            "loss did not decrease: {} -> {last}",
            first.unwrap()
        );
    }
}
