use mfaplace_autograd::{Graph, Var};
use mfaplace_nn::BatchNorm2d;
use mfaplace_tensor::Tensor;

/// Number of congestion-level classes (levels `0..=7`).
pub const NUM_LEVEL_CLASSES: usize = 8;

/// A congestion-prediction network: features in, level logits out.
pub trait CongestionModel {
    /// Builds the forward pass from `x: [B, 6, H, W]` to logits
    /// `[B, 8, H, W]`.
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var;

    /// All trainable parameters.
    fn params(&self) -> Vec<Var>;

    /// Model name as used in the paper's tables.
    fn name(&self) -> &str;

    /// All batch-norm layers in a fixed traversal order.
    ///
    /// The data-parallel trainer uses this to keep running statistics
    /// worker-count invariant: each replica captures its shard's batch
    /// statistics, and the primary replays them in sample order (see
    /// [`BatchNorm2d::ema_update`]). The order only has to be stable and
    /// identical between a model and its clones — which any deterministic
    /// traversal of the struct is. Models without batch norm return the
    /// default empty list.
    fn batch_norms(&mut self) -> Vec<&mut BatchNorm2d> {
        Vec::new()
    }
}

/// Converts logits `[B, K, H, W]` into the *expected* congestion level per
/// tile, `sum_k k * softmax_k`, shaped `[B, H, W]`. This continuous estimate
/// feeds the R^2/NRMS metrics and the placement flow's inflation.
pub fn expected_levels(logits: &Tensor) -> Tensor {
    let (b, k, h, w) = logits.dims4();
    let hw = h * w;
    let mut out = vec![0.0f32; b * hw];
    let src = logits.data();
    for bi in 0..b {
        for p in 0..hw {
            let mut m = f32::NEG_INFINITY;
            for ki in 0..k {
                m = m.max(src[(bi * k + ki) * hw + p]);
            }
            let mut z = 0.0f32;
            let mut acc = 0.0f32;
            for ki in 0..k {
                let e = (src[(bi * k + ki) * hw + p] - m).exp();
                z += e;
                acc += ki as f32 * e;
            }
            out[bi * hw + p] = acc / z;
        }
    }
    Tensor::from_vec(vec![b, h, w], out).expect("expected levels")
}

/// Converts logits `[B, K, H, W]` into argmax class ids per tile (for the
/// ACC metric), shaped `[B*H*W]`.
pub fn predicted_classes(logits: &Tensor) -> Vec<u8> {
    let (b, k, h, w) = logits.dims4();
    let hw = h * w;
    let src = logits.data();
    let mut out = vec![0u8; b * hw];
    for bi in 0..b {
        for p in 0..hw {
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for ki in 0..k {
                let v = src[(bi * k + ki) * hw + p];
                if v > best_v {
                    best_v = v;
                    best = ki;
                }
            }
            out[bi * hw + p] = best as u8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_levels_of_uniform_logits_is_midpoint() {
        let logits = Tensor::zeros(vec![1, 8, 2, 2]);
        let levels = expected_levels(&logits);
        // uniform over 0..=7 -> 3.5
        for &v in levels.data() {
            assert!((v - 3.5).abs() < 1e-5);
        }
    }

    #[test]
    fn expected_levels_tracks_peaked_logits() {
        let mut logits = Tensor::zeros(vec![1, 8, 1, 1]);
        logits.set(&[0, 5, 0, 0], 50.0);
        let levels = expected_levels(&logits);
        assert!((levels.data()[0] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn predicted_classes_argmax() {
        let mut logits = Tensor::zeros(vec![1, 8, 1, 2]);
        logits.set(&[0, 3, 0, 0], 2.0);
        logits.set(&[0, 7, 0, 1], 2.0);
        assert_eq!(predicted_classes(&logits), vec![3, 7]);
    }
}
