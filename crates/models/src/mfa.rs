//! The Multiscale Feature Attention (MFA) block (Fig. 3, Eqs. 4-7).
//!
//! The MFA block runs a *position attention module* (PAM) and a *channel
//! attention module* (CAM) — the dual attention of DANet \[14\] — in parallel
//! on a channel-reduced feature (reduction factor 16), sums the branches and
//! restores the original channel count with a 1x1 convolution. Placed on
//! every skip-connection level and before the transformer stage.

use mfaplace_autograd::{Graph, Var};
use mfaplace_nn::{composed_attention, Conv2d, Module};
use mfaplace_rt::rng::Rng;
use mfaplace_tensor::Tensor;

/// Position attention (Eqs. 4-5): spatial L x L attention where
/// `P_ji = softmax_i(B_i . C_j)` and the output is
/// `M^p_j = alpha * sum_i P_ji D_i + M_j` with learnable `alpha`
/// (initialized to 0, as in DANet).
#[derive(Debug, Clone)]
pub struct PamBlock {
    conv_b: Conv2d,
    conv_c: Conv2d,
    conv_d: Conv2d,
    alpha: Var,
    channels: usize,
}

impl PamBlock {
    /// Creates a PAM over `channels` feature maps.
    pub fn new(g: &mut Graph, channels: usize, rng: &mut impl Rng) -> Self {
        PamBlock {
            conv_b: Conv2d::new(g, channels, channels, 1, 1, 0, false, rng),
            conv_c: Conv2d::new(g, channels, channels, 1, 1, 0, false, rng),
            conv_d: Conv2d::new(g, channels, channels, 1, 1, 0, false, rng),
            alpha: g.param(Tensor::zeros(vec![1])),
            channels,
        }
    }
}

impl Module for PamBlock {
    fn forward(&mut self, g: &mut Graph, m: Var, train: bool) -> Var {
        let (b, n, h, w) = g.value(m).dims4();
        assert_eq!(n, self.channels, "PAM channel mismatch");
        let l = h * w;
        let fb = self.conv_b.forward(g, m, train);
        let fc = self.conv_c.forward(g, m, train);
        let fd = self.conv_d.forward(g, m, train);
        let fb = g.reshape(fb, vec![b, n, l]);
        let fc = g.reshape(fc, vec![b, n, l]);
        let fd = g.reshape(fd, vec![b, n, l]);
        let attended = if composed_attention() {
            // E[i, j] = B_i . C_j  ->  [B, L, L]
            let bt = g.permute(fb, &[0, 2, 1]);
            let e = g.bmm(bt, fc);
            // P_ji = softmax over i of E[i, j]: row-softmax of E^T.
            let et = g.permute(e, &[0, 2, 1]);
            let p = g.softmax_last(et); // p[j, i]
                                        // out_j = sum_i P_ji D_i  ->  D (N x L) x P^T (L x L)
            let pt = g.permute(p, &[0, 2, 1]);
            g.bmm(fd, pt) // [B, N, L]
        } else {
            // Fused feature-major kernel: C is the query, B the key, D the
            // value; none of the [B, L, L] score/softmax/permute tensors are
            // materialized. Bitwise identical to the chain above.
            g.attention_fm(fc, fb, fd, 1.0)
        };
        let m_flat = g.reshape(m, vec![b, n, l]);
        let scaled = g.mul_scalar_var(attended, self.alpha);
        let out = g.add(scaled, m_flat);
        g.reshape(out, vec![b, n, h, w])
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.conv_b.params();
        p.extend(self.conv_c.params());
        p.extend(self.conv_d.params());
        p.push(self.alpha);
        p
    }
}

/// Channel attention (Eqs. 6-7): channel-wise Gram attention
/// `C_ji = softmax_i(M_i . M_j)` with output
/// `M^c_j = beta * sum_i C_ji M_i + M_j` and learnable `beta`.
///
/// (The paper writes `C in R^{L x L}`; as in DANet the Gram matrix is over
/// *channels*, i.e. `N x N` — we implement the channel form.)
#[derive(Debug, Clone)]
pub struct CamBlock {
    beta: Var,
}

impl CamBlock {
    /// Creates a CAM (its only parameter is the scalar `beta`).
    pub fn new(g: &mut Graph) -> Self {
        CamBlock {
            beta: g.param(Tensor::zeros(vec![1])),
        }
    }
}

impl Module for CamBlock {
    fn forward(&mut self, g: &mut Graph, m: Var, _train: bool) -> Var {
        let (b, n, h, w) = g.value(m).dims4();
        let l = h * w;
        let m_flat = g.reshape(m, vec![b, n, l]);
        let attended = if composed_attention() {
            // E[i, j] = M_i . M_j  ->  [B, N, N]
            let mt = g.permute(m_flat, &[0, 2, 1]);
            let e = g.bmm(m_flat, mt);
            // C_ji = softmax over i of E[i, j]: row-softmax of E^T.
            let et = g.permute(e, &[0, 2, 1]);
            let c = g.softmax_last(et); // c[j, i]
                                        // out_j = sum_i C_ji M_i  ->  C (N x N) x M (N x L)
            g.bmm(c, m_flat)
        } else {
            // Fused token-major self-attention over channels (tokens =
            // channel vectors, q = k = v = M). Bitwise identical to the
            // chain above, including the aliased-gradient accumulation
            // order into m_flat.
            g.attention(m_flat, m_flat, m_flat, 1.0)
        };
        let scaled = g.mul_scalar_var(attended, self.beta);
        let out = g.add(scaled, m_flat);
        g.reshape(out, vec![b, n, h, w])
    }

    fn params(&self) -> Vec<Var> {
        vec![self.beta]
    }
}

/// The full MFA block: 1x1 reduce (factor 16) -> PAM and CAM in parallel ->
/// sum -> 1x1 restore, with an outer residual connection preserving the
/// multiscale feature (Fig. 3).
#[derive(Debug, Clone)]
pub struct MfaBlock {
    reduce: Conv2d,
    pam: PamBlock,
    cam: CamBlock,
    restore: Conv2d,
    reduced: usize,
}

impl MfaBlock {
    /// Creates an MFA block over `channels` feature maps with the paper's
    /// channel reduction factor of 16.
    pub fn new(g: &mut Graph, channels: usize, rng: &mut impl Rng) -> Self {
        Self::with_reduction(g, channels, 16, rng)
    }

    /// Creates an MFA block with an explicit channel-reduction factor.
    ///
    /// The paper's factor of 16 assumes full-scale widths (C >= 16); the
    /// scaled experiments use a smaller factor so the reduced feature keeps
    /// more than one channel (preserving the *structure* of the dual
    /// attention rather than its literal arithmetic).
    pub fn with_reduction(
        g: &mut Graph,
        channels: usize,
        reduction: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let reduced = (channels / reduction.max(1)).max(1);
        MfaBlock {
            reduce: Conv2d::new(g, channels, reduced, 1, 1, 0, true, rng),
            pam: PamBlock::new(g, reduced, rng),
            cam: CamBlock::new(g),
            // Zero-init restore: the MFA block starts as the identity on
            // its outer residual and learns its attention contribution.
            restore: Conv2d::new_zeroed(g, reduced, channels, 1, 1, 0, true),
            reduced,
        }
    }

    /// Channel count of the internal reduced feature.
    pub fn reduced_channels(&self) -> usize {
        self.reduced
    }
}

impl Module for MfaBlock {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        let r = self.reduce.forward(g, x, train);
        let p = self.pam.forward(g, r, train);
        let c = self.cam.forward(g, r, train);
        let sum = g.add(p, c);
        let restored = self.restore.forward(g, sum, train);
        g.add(restored, x)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.reduce.params();
        p.extend(self.pam.params());
        p.extend(self.cam.params());
        p.extend(self.restore.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    #[test]
    fn pam_preserves_shape() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut pam = PamBlock::new(&mut g, 3, &mut rng);
        let x = g.constant(Tensor::randn(vec![2, 3, 4, 4], 1.0, &mut rng));
        let y = pam.forward(&mut g, x, true);
        assert_eq!(g.value(y).shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn pam_with_zero_alpha_is_identity() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut pam = PamBlock::new(&mut g, 2, &mut rng);
        let xt = Tensor::randn(vec![1, 2, 3, 3], 1.0, &mut rng);
        let x = g.constant(xt.clone());
        let y = pam.forward(&mut g, x, true);
        // alpha starts at 0 so the block must be exactly the identity.
        for (a, b) in g.value(y).data().iter().zip(xt.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn cam_with_zero_beta_is_identity() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cam = CamBlock::new(&mut g);
        let xt = Tensor::randn(vec![1, 3, 2, 2], 1.0, &mut rng);
        let x = g.constant(xt.clone());
        let y = cam.forward(&mut g, x, true);
        for (a, b) in g.value(y).data().iter().zip(xt.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn mfa_reduces_by_sixteen() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mfa = MfaBlock::new(&mut g, 32, &mut rng);
        assert_eq!(mfa.reduced_channels(), 2);
        let mfa_small = MfaBlock::new(&mut g, 8, &mut rng);
        assert_eq!(mfa_small.reduced_channels(), 1, "floor at one channel");
    }

    #[test]
    fn mfa_preserves_shape_and_trains() {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut mfa = MfaBlock::new(&mut g, 4, &mut rng);
        let x = g.constant(Tensor::randn(vec![1, 4, 8, 8], 1.0, &mut rng));
        let y = mfa.forward(&mut g, x, true);
        assert_eq!(g.value(y).shape(), &[1, 4, 8, 8]);
        let loss = g.mean(y);
        g.backward(loss);
        let grads = mfa
            .params()
            .iter()
            .filter(|&&p| g.grad(p).is_some())
            .count();
        // alpha/beta receive zero-path gradients only through the residual,
        // but every conv must have a gradient.
        assert!(grads >= mfa.params().len() - 2, "missing gradients");
    }

    #[test]
    fn attention_rows_are_stochastic() {
        // The PAM attention map rows must sum to 1 (softmax over i).
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(5);
        let xt = Tensor::randn(vec![1, 2, 3], 1.0, &mut rng); // [B, N, L]
        let x = g.constant(xt);
        let xtv = g.permute(x, &[0, 2, 1]);
        let e = g.bmm(xtv, x);
        let et = g.permute(e, &[0, 2, 1]);
        let p = g.softmax_last(et);
        for row in g.value(p).data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
