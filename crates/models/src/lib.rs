//! Congestion-prediction models.
//!
//! Implements the paper's *multiscale feature attention (MFA) and
//! transformer based* congestion predictor ([`OursModel`], Figs. 2-5) and
//! the three published baselines it is compared against in Table I:
//!
//! - [`UNetModel`] — the U-Net of Szentimrey et al. \[6\];
//! - [`PgnnModel`] — PGNN \[7\]: pin-proximity-graph aggregation feeding a
//!   U-Net (the graph network is modelled as fixed message-passing rounds
//!   over the pin-proximity grid graph followed by learned 1x1 mixing — see
//!   `DESIGN.md`);
//! - [`Pros2Model`] — PROS 2.0 \[8\]: a deeper ResNet encoder with a U-Net
//!   decoder.
//!
//! All models consume the six grid features `[B, 6, H, W]` and emit
//! per-tile congestion-level logits `[B, 8, H, W]` (levels 0-7). Ablations
//! of the paper's design choices (no MFA, no transformer) are exposed via
//! [`OursConfig`].
//!
//! # Example
//!
//! ```
//! use mfaplace_autograd::Graph;
//! use mfaplace_models::{CongestionModel, OursConfig, OursModel};
//! use mfaplace_tensor::Tensor;
//! use mfaplace_rt::rng::{SeedableRng, StdRng};
//!
//! let mut g = Graph::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = OursConfig { grid: 32, base_channels: 4, vit_layers: 1, ..OursConfig::default() };
//! let mut model = OursModel::new(&mut g, cfg, &mut rng);
//! let x = g.constant(Tensor::zeros(vec![1, 6, 32, 32]));
//! let logits = model.forward(&mut g, x, false);
//! assert_eq!(g.value(logits).shape(), &[1, 8, 32, 32]);
//! ```

mod blocks;
mod mfa;
mod model;
mod ours;
mod pgnn;
mod pros2;
pub mod summary;
mod unet;
mod vit;
pub mod zoo;

pub use mfa::{CamBlock, MfaBlock, PamBlock};
pub use model::{expected_levels, predicted_classes, CongestionModel, NUM_LEVEL_CLASSES};
pub use ours::{OursConfig, OursModel};
pub use pgnn::PgnnModel;
pub use pros2::Pros2Model;
pub use unet::UNetModel;
pub use vit::VitStage;
pub use zoo::{AnyModel, Arch, ArchSpec};
