//! Fused-vs-composed equivalence for the MFA dual attention: PamBlock,
//! CamBlock and the whole MfaBlock must produce bitwise-identical values
//! and gradients whether they record the fused attention ops or the
//! composed permute/bmm/softmax chains.
//!
//! The composed-attention fallback is process-wide, so all tests serialize
//! on one mutex.

use std::sync::Mutex;

use mfaplace_autograd::{Graph, Var};
use mfaplace_models::{CamBlock, MfaBlock, PamBlock};
use mfaplace_nn::{set_composed_attention, Module};
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn assert_bitwise(label: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{label}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Builds a block from a fixed seed, runs forward+backward on a fixed
/// input, and returns `(output, input grad, param grads)`.
fn run_block<M: Module>(
    composed: bool,
    shape: &[usize],
    build: impl FnOnce(&mut Graph, &mut StdRng) -> M,
) -> (Tensor, Tensor, Vec<Tensor>) {
    set_composed_attention(composed);
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(11);
    let mut block = build(&mut g, &mut rng);
    // alpha/beta initialize to zero, which would multiply the upstream
    // gradient of the attention output by zero and mask any backward
    // divergence — set every scalar gate to a nonzero value first.
    for &p in &block.params() {
        if g.value(p).numel() == 1 {
            *g.value_mut(p) = Tensor::from_vec(vec![1], vec![0.8]).expect("scalar");
        }
    }
    let x = g.param(Tensor::randn(shape.to_vec(), 1.0, &mut rng));
    let y = block.forward(&mut g, x, true);
    let y2 = g.mul(y, y);
    let loss = g.mean(y2);
    g.backward(loss);
    let out = g.value(y).clone();
    let dx = g.grad(x).cloned().expect("input grad");
    let dparams: Vec<Tensor> = block
        .params()
        .iter()
        .map(|&p: &Var| g.grad(p).cloned().unwrap_or_else(|| Tensor::zeros(vec![1])))
        .collect();
    set_composed_attention(false);
    (out, dx, dparams)
}

fn assert_equivalent<M: Module>(
    label: &str,
    shape: &[usize],
    build: impl Fn(&mut Graph, &mut StdRng) -> M,
) {
    let (y_f, dx_f, dp_f) = run_block(false, shape, &build);
    let (y_c, dx_c, dp_c) = run_block(true, shape, &build);
    assert_bitwise(&format!("{label} value"), &y_f, &y_c);
    assert_bitwise(&format!("{label} dx"), &dx_f, &dx_c);
    assert_eq!(dp_f.len(), dp_c.len());
    for (i, (a, b)) in dp_f.iter().zip(&dp_c).enumerate() {
        assert_bitwise(&format!("{label} dparam{i}"), a, b);
    }
}

#[test]
fn pam_fused_matches_composed_bitwise() {
    let _guard = FLAG_LOCK.lock().unwrap();
    // 5x5 and 7x7 grids give L = 25 / 49: odd, not tile multiples.
    assert_equivalent("pam 5x5", &[2, 3, 5, 5], |g, rng| PamBlock::new(g, 3, rng));
    assert_equivalent("pam 7x7", &[1, 4, 7, 7], |g, rng| PamBlock::new(g, 4, rng));
}

#[test]
fn cam_fused_matches_composed_bitwise() {
    let _guard = FLAG_LOCK.lock().unwrap();
    // CAM aliases q = k = v onto one tensor; this exercises the fused
    // backward's accumulation order into the shared gradient buffer.
    assert_equivalent("cam 5x5", &[2, 3, 5, 5], |g, _| CamBlock::new(g));
    assert_equivalent("cam 6x6", &[1, 5, 6, 6], |g, _| CamBlock::new(g));
}

#[test]
fn mfa_block_fused_matches_composed_bitwise() {
    let _guard = FLAG_LOCK.lock().unwrap();
    assert_equivalent("mfa 8x8", &[1, 8, 8, 8], |g, rng| {
        MfaBlock::with_reduction(g, 8, 2, rng)
    });
}
