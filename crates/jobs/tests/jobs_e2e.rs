//! Placement-as-a-service end to end: a real fleet server with the jobs
//! extension mounted, exercised over HTTP.
//!
//! The acceptance assertions from the issue:
//! - two concurrent jobs sharing one model slot complete with event
//!   streams bitwise identical to their serial runs (determinism survives
//!   batching and interleaving);
//! - `/metrics` exposes the `mfaplace_jobs_*` families;
//! - the slot's batch counters prove the concurrent jobs coalesced
//!   per-iteration forwards (`batched_items_total > batches_total`).

use std::sync::Arc;
use std::time::Duration;

use mfaplace_core::loader::{init_checkpoint, LoadOptions};
use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::io::write_design;
use mfaplace_jobs::{JobEngine, JobsConfig, JobsExtension};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_serve::{
    client, serve_fleet_with, BatchConfig, Metrics, ModelFleet, ServeConfig, ServerHandle,
    SlotLimits,
};

const GRID: usize = 16;

fn checkpoint(name: &str, seed: u64) -> String {
    let dir = std::env::temp_dir().join("mfaplace_jobs_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name).to_string_lossy().into_owned();
    let mut spec = ArchSpec::new(Arch::UNet, GRID);
    spec.base_channels = 2;
    init_checkpoint(&spec, seed, &path).unwrap();
    path
}

/// One-slot fleet server with the jobs extension mounted. The batch
/// window is stretched so concurrent jobs' per-round predictions land in
/// one forward.
fn start_jobs_server(ckpt: &str) -> ServerHandle {
    let batch = BatchConfig {
        max_batch: 8,
        batch_window: Duration::from_millis(500),
        queue_bound: 64,
    };
    let metrics = Arc::new(Metrics::new());
    let fleet = Arc::new(ModelFleet::new(metrics.clone(), batch));
    fleet
        .add_slot(
            "default",
            ckpt,
            LoadOptions::default(),
            SlotLimits::default(),
        )
        .unwrap();
    let engine = JobEngine::start(
        Arc::clone(&fleet),
        JobsConfig {
            workers: 2,
            queue_bound: 8,
            default_deadline: Duration::from_secs(120),
            retain: 16,
        },
    );
    engine.register_metrics(&metrics);
    serve_fleet_with(
        fleet,
        metrics,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            batch,
            ..ServeConfig::default()
        },
        vec![Arc::new(JobsExtension::new(engine))],
    )
    .unwrap()
}

fn submit(addr: &str, body: &str) -> String {
    let r = client::request(addr, "POST", "/jobs", &[], body.as_bytes()).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    r.text()
        .lines()
        .next()
        .unwrap()
        .strip_prefix("id ")
        .expect("submit response starts with the job id")
        .to_owned()
}

/// Follows a job's NDJSON stream to completion and returns its lines.
fn watch(addr: &str, id: &str) -> Vec<String> {
    let mut lines = Vec::new();
    let path = format!("/jobs/{id}/events");
    let status = client::stream_lines(addr, "GET", &path, &[], b"", &mut |line| {
        if !line.is_empty() {
            lines.push(line.to_owned());
        }
        true
    })
    .unwrap();
    assert_eq!(status, 200);
    lines
}

#[test]
fn concurrent_jobs_match_serial_runs_bitwise_and_coalesce_batches() {
    let ckpt = checkpoint("jobs.mfaw", 11);
    let server = start_jobs_server(&ckpt);
    let addr = server.addr().to_string();

    let design = DesignPreset::design_116()
        .with_scale(1024, 128, 64)
        .generate(1);
    let body = format!(
        "seed=5 iterations=6\n---DESIGN---\n{}",
        write_design(&design)
    );

    // Serial phase: two identical jobs, one after the other.
    let serial_a = {
        let id = submit(&addr, &body);
        watch(&addr, &id)
    };
    let serial_b = {
        let id = submit(&addr, &body);
        watch(&addr, &id)
    };
    assert!(!serial_a.is_empty());
    assert_eq!(
        serial_a.last().unwrap(),
        "{\"event\":\"done\",\"state\":\"completed\"}"
    );
    assert!(
        serial_a
            .iter()
            .any(|l| l.contains("\"event\":\"predicted\"")),
        "stream must include model predictions: {serial_a:#?}"
    );
    assert!(serial_a.iter().any(|l| l.contains("\"event\":\"scored\"")));
    assert_eq!(
        serial_a, serial_b,
        "serial reruns must be bitwise identical"
    );

    // Concurrent phase: submit both, then follow both streams while the
    // two workers place simultaneously against the one slot.
    let id_a = submit(&addr, &body);
    let id_b = submit(&addr, &body);
    let (conc_a, conc_b) = std::thread::scope(|s| {
        let ta = s.spawn(|| watch(&addr, &id_a));
        let tb = s.spawn(|| watch(&addr, &id_b));
        (ta.join().unwrap(), tb.join().unwrap())
    });
    assert_eq!(
        conc_a, serial_a,
        "concurrent job A diverged from its serial run"
    );
    assert_eq!(
        conc_b, serial_a,
        "concurrent job B diverged from its serial run"
    );

    // Job status + listing reflect four completed jobs.
    let listing = client::request(&addr, "GET", "/jobs", &[], b"")
        .unwrap()
        .text();
    assert_eq!(listing.lines().count(), 4, "{listing}");
    assert!(
        listing.lines().all(|l| l.contains(" completed ")),
        "{listing}"
    );
    let status = client::request(&addr, "GET", &format!("/jobs/{id_a}"), &[], b"")
        .unwrap()
        .text();
    assert!(status.contains("state completed"), "{status}");
    assert!(status.contains("summary s_score="), "{status}");

    // Metrics: the jobs families are present…
    let metrics = client::request(&addr, "GET", "/metrics", &[], b"")
        .unwrap()
        .text();
    assert!(
        metrics.contains("mfaplace_jobs_submitted_total 4"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mfaplace_jobs_completed_total 4"),
        "{metrics}"
    );
    assert!(metrics.contains("mfaplace_jobs_workers 2"), "{metrics}");
    assert!(
        metrics.contains(&format!(
            "mfaplace_jobs_job_state{{job=\"{id_a}\",state=\"completed\"}} 1"
        )),
        "{metrics}"
    );

    // …and the slot's batch counters prove the concurrent phase coalesced
    // predictions: serial jobs only ever submit batches of one, so items
    // can exceed batches only if some forward carried more than one job.
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
            .unwrap_or_else(|| panic!("missing {name} in scrape:\n{metrics}"))
    };
    let batches = counter("mfaplace_slot_batches_total{slot=\"default\"}");
    let items = counter("mfaplace_slot_batched_items_total{slot=\"default\"}");
    assert!(
        items > batches,
        "expected coalesced forwards (items {items} > batches {batches})"
    );

    server.join();
}

#[test]
fn jobs_survive_server_drain_and_streams_replay_after_completion() {
    let ckpt = checkpoint("jobs_drain.mfaw", 12);
    let server = start_jobs_server(&ckpt);
    let addr = server.addr().to_string();

    let design = DesignPreset::design_116()
        .with_scale(1024, 128, 64)
        .generate(2);
    let body = format!(
        "seed=9 iterations=4\n---DESIGN---\n{}",
        write_design(&design)
    );
    let id = submit(&addr, &body);
    let live = watch(&addr, &id);

    // A second watch of the finished job replays the identical stream.
    let replay = watch(&addr, &id);
    assert_eq!(live, replay);

    // Graceful shutdown: the extension drains (no panics, engine joins)
    // and the server comes down cleanly.
    server.shutdown();
    server.join();
}
