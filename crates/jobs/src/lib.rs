//! `mfaplace-jobs` — placement-as-a-service: an async job engine that
//! runs the paper's predictor-in-the-loop macro placement flow
//! ([`mfaplace_core::MacroPlacementFlow`]) behind the serve layer.
//!
//! # Architecture
//!
//! ```text
//! POST /jobs ──▶ bounded queue (429 when full) ──▶ worker pool
//!                                                    │ one flow per job
//!                                                    ▼
//!                                      Flow::run_with_observer
//!                             GP iterations ─ predict ─ inflate ─ route
//!                                                    │ per-round predicts
//!                                                    ▼
//!                                    fleet slot micro-batcher (shared
//!                                    with /predict — N concurrent jobs
//!                                    coalesce into [N,6,H,W] forwards)
//! ```
//!
//! - [`spec`] — the job-submission wire format (`flow=… seed=…` options,
//!   design inline after a `---DESIGN---` marker or server-side by path);
//! - [`predictor`] — a [`mfaplace_placer::CongestionPredictor`] that
//!   resolves predictions through a fleet slot's batcher, which is what
//!   makes concurrent jobs share forwards with each other and with plain
//!   `/predict` traffic;
//! - [`engine`] — the bounded worker pool, job registry, per-job NDJSON
//!   event logs, cancellation, graceful drain, and `mfaplace_jobs_*`
//!   metrics;
//! - [`api`] — the `/jobs` HTTP surface, mounted into the server as a
//!   [`mfaplace_serve::ServeExtension`] (`POST /jobs`, `GET /jobs[/<id>]`,
//!   `GET /jobs/<id>/events` NDJSON stream, `DELETE /jobs/<id>`).
//!
//! Job event streams carry no timestamps: a job's stream is a pure
//! function of (design, flow, seed, checkpoint), so two runs of the same
//! spec — serial or concurrently interleaved with other jobs — produce
//! bitwise-identical streams. This is asserted end to end in this crate's
//! tests.

pub mod api;
pub mod engine;
pub mod predictor;
pub mod spec;

pub use api::JobsExtension;
pub use engine::{Job, JobEngine, JobState, JobsConfig, SubmitJobError};
pub use predictor::SlotPredictor;
pub use spec::{DesignSource, JobSpec, PredictorKind};
