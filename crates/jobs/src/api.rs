//! The `/jobs` HTTP surface, mounted into the serve layer as a
//! [`ServeExtension`].
//!
//! | Method + path            | Behaviour                                   |
//! |--------------------------|---------------------------------------------|
//! | `POST /jobs`             | submit (200 / 400 / 429 / 503)              |
//! | `GET /jobs`              | one-line-per-job listing                    |
//! | `GET /jobs/<id>`         | status text                                 |
//! | `GET /jobs/<id>/events`  | NDJSON event stream, follows to completion  |
//! | `DELETE /jobs/<id>`      | cancel                                      |
//!
//! The events endpoint streams with `connection: close` framing (no
//! content length): lines are flushed as the flow emits them, and the
//! stream ends when the job's terminal `done` line has been written. A
//! client that goes away mid-stream just ends the write loop — the job
//! itself keeps running.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use mfaplace_serve::http::{write_stream_head, Request, Response};
use mfaplace_serve::{ExtensionOutcome, ServeExtension};

use crate::engine::{Job, JobEngine, SubmitJobError};
use crate::spec::parse_spec;

/// How long one streaming poll blocks before re-checking the connection.
const STREAM_POLL: Duration = Duration::from_millis(500);

/// Mounts a [`JobEngine`] at `/jobs`.
pub struct JobsExtension {
    engine: Arc<JobEngine>,
}

impl JobsExtension {
    /// Wraps the engine.
    pub fn new(engine: Arc<JobEngine>) -> Self {
        JobsExtension { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Arc<JobEngine> {
        &self.engine
    }

    fn submit(&self, req: &Request) -> Response {
        let body = match std::str::from_utf8(&req.body) {
            Ok(body) => body,
            Err(_) => return Response::text(400, "request body is not UTF-8\n"),
        };
        let spec = match parse_spec(body) {
            Ok(spec) => spec,
            Err(err) => return Response::text(400, format!("{err}\n")),
        };
        match self.engine.submit(spec) {
            Ok(job) => Response::text(
                200,
                format!("id {}\nstate {}\n", job.id(), job.state().name()),
            ),
            Err(SubmitJobError::Invalid(err)) => Response::text(400, format!("{err}\n")),
            Err(SubmitJobError::QueueFull) => Response::text(429, "job queue full\n"),
            Err(SubmitJobError::Draining) => Response::text(503, "job engine draining\n"),
        }
    }

    fn listing(&self) -> Response {
        let mut out = String::new();
        for job in self.engine.list() {
            let spec = job.spec();
            out.push_str(&format!(
                "{} {} flow={} slot={} events={}\n",
                job.id(),
                job.state().name(),
                spec.flow,
                spec.slot.as_deref().unwrap_or("default"),
                job.event_count()
            ));
        }
        Response::text(200, out)
    }

    fn status(&self, job: &Arc<Job>) -> Response {
        let spec = job.spec();
        let mut out = format!(
            "id {}\nflow {}\nslot {}\npredictor {}\nseed {}\nstate {}\nevents {}\n",
            job.id(),
            spec.flow,
            spec.slot.as_deref().unwrap_or("default"),
            spec.predictor.name(),
            spec.seed,
            job.state().name(),
            job.event_count()
        );
        if let Some(summary) = job.summary() {
            out.push_str(&format!("summary {summary}\n"));
        }
        if let Some(error) = job.error() {
            out.push_str(&format!("error {error}\n"));
        }
        Response::text(200, out)
    }

    fn cancel(&self, id: &str) -> Response {
        match self.engine.cancel(id) {
            None => Response::text(404, format!("no such job {id:?}\n")),
            Some(state) if state.is_terminal() => {
                Response::text(200, format!("already {}\n", state.name()))
            }
            Some(_) => Response::text(200, format!("cancelling {id}\n")),
        }
    }

    /// Streams the job's NDJSON event log, following until the terminal
    /// `done` line has been delivered or the client disconnects.
    fn stream_events(&self, job: &Arc<Job>, writer: &mut dyn Write) -> ExtensionOutcome {
        if write_stream_head(writer, 200, "application/x-ndjson").is_err() {
            return ExtensionOutcome::Streamed { status: 200 };
        }
        let mut sent = 0;
        loop {
            let (lines, state) = job.wait_events(sent, STREAM_POLL);
            for line in &lines {
                if writer
                    .write_all(line.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .is_err()
                {
                    // Client went away; the job keeps running.
                    return ExtensionOutcome::Streamed { status: 200 };
                }
            }
            sent += lines.len();
            if writer.flush().is_err() {
                return ExtensionOutcome::Streamed { status: 200 };
            }
            if state.is_terminal() && lines.is_empty() {
                return ExtensionOutcome::Streamed { status: 200 };
            }
        }
    }
}

impl ServeExtension for JobsExtension {
    fn handle(&self, req: &Request, writer: &mut dyn Write) -> ExtensionOutcome {
        let Some(rest) = req.path.strip_prefix("/jobs") else {
            return ExtensionOutcome::NotHandled;
        };
        match (req.method.as_str(), rest) {
            ("POST", "" | "/") => ExtensionOutcome::Respond(self.submit(req)),
            ("GET", "" | "/") => ExtensionOutcome::Respond(self.listing()),
            (method, rest) => {
                let rest = rest.trim_start_matches('/');
                let (id, tail) = match rest.split_once('/') {
                    Some((id, tail)) => (id, Some(tail)),
                    None => (rest, None),
                };
                if id.is_empty() {
                    return ExtensionOutcome::NotHandled;
                }
                match (method, tail) {
                    ("GET", Some("events")) => match self.engine.get(id) {
                        Some(job) => self.stream_events(&job, writer),
                        None => ExtensionOutcome::Respond(Response::text(
                            404,
                            format!("no such job {id:?}\n"),
                        )),
                    },
                    ("GET", None) => match self.engine.get(id) {
                        Some(job) => ExtensionOutcome::Respond(self.status(&job)),
                        None => ExtensionOutcome::Respond(Response::text(
                            404,
                            format!("no such job {id:?}\n"),
                        )),
                    },
                    ("DELETE", None) => ExtensionOutcome::Respond(self.cancel(id)),
                    _ => ExtensionOutcome::Respond(Response::text(
                        405,
                        "method not allowed on /jobs\n",
                    )),
                }
            }
        }
    }

    /// Serve drains extensions after the listener stops accepting and all
    /// connection threads join, but *before* the fleet shuts down — so
    /// in-flight jobs can still get predictions while they finish.
    fn on_shutdown(&self) {
        self.engine.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::JobsConfig;
    use mfaplace_fpga::design::DesignPreset;
    use mfaplace_fpga::io::write_design;
    use mfaplace_serve::{BatchConfig, Metrics, ModelFleet};

    fn extension(workers: usize) -> JobsExtension {
        let fleet = Arc::new(ModelFleet::new(
            Arc::new(Metrics::new()),
            BatchConfig::default(),
        ));
        JobsExtension::new(JobEngine::start(
            fleet,
            JobsConfig {
                workers,
                queue_bound: 4,
                default_deadline: Duration::from_secs(60),
                retain: 16,
            },
        ))
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn respond(ext: &JobsExtension, req: &Request) -> Response {
        let mut sink = Vec::new();
        match ext.handle(req, &mut sink) {
            ExtensionOutcome::Respond(resp) => resp,
            other => panic!("expected Respond, got {other:?}"),
        }
    }

    fn body_text(resp: &Response) -> String {
        String::from_utf8(resp.body.clone()).unwrap()
    }

    #[test]
    fn routes_outside_jobs_are_not_handled() {
        let ext = extension(0);
        let mut sink = Vec::new();
        assert!(matches!(
            ext.handle(&request("GET", "/predict", ""), &mut sink),
            ExtensionOutcome::NotHandled
        ));
    }

    #[test]
    fn submit_status_cancel_round_trip() {
        let ext = extension(0);
        let design = write_design(
            &DesignPreset::design_116()
                .with_scale(1024, 128, 64)
                .generate(1),
        );
        let body = format!("predictor=rudy seed=2 iterations=3 grid=16\n---DESIGN---\n{design}");
        let resp = respond(&ext, &request("POST", "/jobs", &body));
        assert_eq!(resp.status, 200);
        let id = body_text(&resp)
            .lines()
            .next()
            .unwrap()
            .strip_prefix("id ")
            .unwrap()
            .to_owned();

        let status = respond(&ext, &request("GET", &format!("/jobs/{id}"), ""));
        assert_eq!(status.status, 200);
        assert!(body_text(&status).contains("state queued"));

        let listing = respond(&ext, &request("GET", "/jobs", ""));
        assert!(body_text(&listing).contains(&id));

        let cancel = respond(&ext, &request("DELETE", &format!("/jobs/{id}"), ""));
        assert_eq!(cancel.status, 200);
        let again = respond(&ext, &request("DELETE", &format!("/jobs/{id}"), ""));
        assert!(body_text(&again).contains("already cancelled"));

        // The stream of a terminal job ends after replaying the log.
        let mut sink = Vec::new();
        let outcome = ext.handle(
            &request("GET", &format!("/jobs/{id}/events"), ""),
            &mut sink,
        );
        assert!(matches!(
            outcome,
            ExtensionOutcome::Streamed { status: 200 }
        ));
        let text = String::from_utf8(sink).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("application/x-ndjson"));
        assert!(text.ends_with("{\"event\":\"done\",\"state\":\"cancelled\"}\n"));
        ext.engine().shutdown();
    }

    #[test]
    fn bad_submissions_get_400s_and_unknown_ids_404() {
        let ext = extension(0);
        assert_eq!(
            respond(&ext, &request("POST", "/jobs", "flow=bogus")).status,
            400
        );
        assert_eq!(
            respond(
                &ext,
                &request("POST", "/jobs", "predictor=rudy\n---DESIGN---\nnope\n")
            )
            .status,
            400
        );
        assert_eq!(
            respond(&ext, &request("GET", "/jobs/job-99", "")).status,
            404
        );
        assert_eq!(
            respond(&ext, &request("DELETE", "/jobs/job-99", "")).status,
            404
        );
        assert_eq!(
            respond(&ext, &request("PUT", "/jobs/job-99", "")).status,
            405
        );
        let mut sink = Vec::new();
        match ext.handle(&request("GET", "/jobs/job-99/events", ""), &mut sink) {
            ExtensionOutcome::Respond(resp) => assert_eq!(resp.status, 404),
            other => panic!("expected 404 Respond, got {other:?}"),
        }
        ext.engine().shutdown();
    }

    #[test]
    fn queue_full_maps_to_429_and_draining_to_503() {
        let ext = extension(0);
        let design = write_design(
            &DesignPreset::design_116()
                .with_scale(1024, 128, 64)
                .generate(1),
        );
        let body = format!("predictor=rudy grid=16\n---DESIGN---\n{design}");
        for _ in 0..4 {
            assert_eq!(respond(&ext, &request("POST", "/jobs", &body)).status, 200);
        }
        assert_eq!(respond(&ext, &request("POST", "/jobs", &body)).status, 429);
        ext.engine().shutdown();
        assert_eq!(respond(&ext, &request("POST", "/jobs", &body)).status, 503);
    }
}
