//! A [`CongestionPredictor`] that resolves predictions through a fleet
//! slot's micro-batcher.
//!
//! This is what makes jobs "predictor-in-the-loop *at scale*": every
//! per-round prediction inside a running flow is submitted to the same
//! bounded queue as `/predict` traffic, so N concurrent jobs placing at
//! the same time coalesce their forwards into `[N, 6, H, W]` batches on
//! one compiled plan instead of N serial `[1, 6, H, W]` passes.
//!
//! The flow's `CongestionPredictor::predict` signature is infallible (it
//! returns a `GridMap`), so failures are handled out of band: the first
//! batcher/model error is latched into a shared error slot and an
//! all-zero map is returned. The job worker's observer checks the error
//! slot after every event and aborts the flow, so at most a handful of
//! iterations run on the zero map before the job is failed.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use mfaplace_fpga::features::FeatureStack;
use mfaplace_fpga::{Design, GridMap, Placement};
use mfaplace_placer::CongestionPredictor;
use mfaplace_serve::FleetSlot;

/// A predictor bound to one fleet slot and one job deadline.
pub struct SlotPredictor {
    slot: Arc<FleetSlot>,
    deadline: Instant,
    error: Arc<Mutex<Option<String>>>,
}

impl SlotPredictor {
    /// Binds a predictor to `slot`, with every prediction sharing the
    /// whole-job `deadline`.
    pub fn new(slot: Arc<FleetSlot>, deadline: Instant) -> Self {
        SlotPredictor {
            slot,
            deadline,
            error: Arc::new(Mutex::new(None)),
        }
    }

    /// Shared handle the job worker polls to notice prediction failures
    /// (the trait's `predict` cannot return errors).
    pub fn error_slot(&self) -> Arc<Mutex<Option<String>>> {
        Arc::clone(&self.error)
    }

    fn fail(&self, message: String, grid_w: usize, grid_h: usize) -> GridMap {
        let mut slot = self.error.lock().expect("predictor error lock poisoned");
        if slot.is_none() {
            *slot = Some(message);
        }
        GridMap::new(grid_w, grid_h)
    }
}

impl CongestionPredictor for SlotPredictor {
    fn predict(
        &mut self,
        design: &Design,
        placement: &Placement,
        grid_w: usize,
        grid_h: usize,
    ) -> GridMap {
        if self
            .error
            .lock()
            .expect("predictor error lock poisoned")
            .is_some()
        {
            // Already failed: the flow is about to be aborted by the
            // observer; don't queue more work.
            return GridMap::new(grid_w, grid_h);
        }
        let features = FeatureStack::extract(design, placement, grid_w, grid_h).to_tensor();
        let rx = match self.slot.batcher().submit(features, self.deadline) {
            Ok(rx) => rx,
            Err(err) => {
                return self.fail(format!("predict submit failed: {err:?}"), grid_w, grid_h)
            }
        };
        match rx.recv() {
            Ok(Ok(levels)) => GridMap::from_vec(grid_w, grid_h, levels.into_vec()),
            Ok(Err(err)) => self.fail(format!("predict failed: {err:?}"), grid_w, grid_h),
            Err(_) => self.fail(
                "predict worker dropped the reply channel".into(),
                grid_w,
                grid_h,
            ),
        }
    }

    fn name(&self) -> &str {
        "fleet-slot"
    }
}
