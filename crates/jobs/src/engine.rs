//! The job engine: a bounded worker pool draining a bounded queue of
//! placement jobs, each running the full predictor-in-the-loop flow.
//!
//! Lifecycle: `queued → running → completed | failed | cancelled`.
//! Submission is backpressured (the queue refuses work at its bound);
//! shutdown is graceful (no new submissions, queued + running jobs finish
//! before [`JobEngine::shutdown`] returns).
//!
//! Every job keeps an append-only log of NDJSON event lines derived from
//! the flow's progress events. Lines carry no timestamps and no job ids,
//! so a job's stream is a pure function of its spec plus the model
//! checkpoint — the property the `/jobs/<id>/events` determinism tests
//! lean on.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mfaplace_core::{FlowConfig, FlowProgress, MacroPlacementFlow};
use mfaplace_fpga::io::read_design;
use mfaplace_fpga::Design;
use mfaplace_placer::{CongestionPredictor, FlowConfig as PlacerFlowConfig, RudyPredictor};
use mfaplace_serve::{Metrics, ModelFleet};

use crate::predictor::SlotPredictor;
use crate::spec::{DesignSource, JobSpec, PredictorKind};

/// Pool and queue sizing.
#[derive(Debug, Clone)]
pub struct JobsConfig {
    /// Worker threads (concurrent jobs). Env: `MFAPLACE_JOB_WORKERS`.
    pub workers: usize,
    /// Queued-job bound; submissions beyond it get 429. Env:
    /// `MFAPLACE_JOB_QUEUE`.
    pub queue_bound: usize,
    /// Whole-job deadline when the spec has none. Env:
    /// `MFAPLACE_JOB_DEADLINE_MS`.
    pub default_deadline: Duration,
    /// Finished jobs kept for status/event queries; older terminal jobs
    /// are evicted as new ones are submitted.
    pub retain: usize,
}

impl Default for JobsConfig {
    fn default() -> Self {
        JobsConfig {
            workers: 2,
            queue_bound: 8,
            default_deadline: Duration::from_secs(600),
            retain: 64,
        }
    }
}

impl JobsConfig {
    /// Default configuration with `MFAPLACE_JOB_*` env overrides applied.
    pub fn from_env() -> Self {
        let mut cfg = JobsConfig::default();
        if let Some(n) = env_usize("MFAPLACE_JOB_WORKERS") {
            cfg.workers = n.max(1);
        }
        if let Some(n) = env_usize("MFAPLACE_JOB_QUEUE") {
            cfg.queue_bound = n.max(1);
        }
        if let Some(ms) = env_usize("MFAPLACE_JOB_DEADLINE_MS") {
            cfg.default_deadline = Duration::from_millis(ms.max(1) as u64);
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running the flow.
    Running,
    /// Flow finished; outcome summary available.
    Completed,
    /// Flow failed (bad design, unknown slot, prediction error, deadline,
    /// panic).
    Failed,
    /// Cancelled before or during the flow.
    Cancelled,
}

impl JobState {
    /// Lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

struct JobInner {
    state: JobState,
    events: Vec<String>,
    error: Option<String>,
    summary: Option<String>,
}

/// One placement job: spec, parsed design, state, and its event log.
pub struct Job {
    id: String,
    spec: JobSpec,
    design: Design,
    inner: Mutex<JobInner>,
    cv: Condvar,
    cancel: AtomicBool,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("state", &self.state())
            .field("events", &self.event_count())
            .finish_non_exhaustive()
    }
}

impl Job {
    fn new(id: String, spec: JobSpec, design: Design) -> Self {
        Job {
            id,
            spec,
            design,
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                events: Vec::new(),
                error: None,
                summary: None,
            }),
            cv: Condvar::new(),
            cancel: AtomicBool::new(false),
        }
    }

    /// The job id (`job-<n>`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The spec the job was submitted with.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.lock().state
    }

    /// Number of event lines logged so far.
    pub fn event_count(&self) -> usize {
        self.lock().events.len()
    }

    /// The failure message, for failed jobs.
    pub fn error(&self) -> Option<String> {
        self.lock().error.clone()
    }

    /// The outcome summary, for completed jobs.
    pub fn summary(&self) -> Option<String> {
        self.lock().summary.clone()
    }

    /// Blocks until the log grows past `from` or the job turns terminal,
    /// up to `timeout`. Returns the new lines and the state observed with
    /// them (under one lock, so a terminal state implies the returned
    /// lines complete the stream).
    pub fn wait_events(&self, from: usize, timeout: Duration) -> (Vec<String>, JobState) {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if inner.events.len() > from || inner.state.is_terminal() {
                return (
                    inner.events[from.min(inner.events.len())..].to_vec(),
                    inner.state,
                );
            }
            let now = Instant::now();
            if now >= deadline {
                return (Vec::new(), inner.state);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, deadline - now)
                .expect("job lock poisoned");
            inner = guard;
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobInner> {
        self.inner.lock().expect("job lock poisoned")
    }

    fn push_event(&self, line: String) {
        let mut inner = self.lock();
        inner.events.push(line);
        drop(inner);
        self.cv.notify_all();
    }

    fn set_state(&self, state: JobState) {
        let mut inner = self.lock();
        inner.state = state;
        drop(inner);
        self.cv.notify_all();
    }

    fn finish(&self, state: JobState, error: Option<String>, summary: Option<String>) {
        let done = done_line(state, error.as_deref());
        let mut inner = self.lock();
        inner.state = state;
        inner.error = error;
        inner.summary = summary;
        inner.events.push(done);
        drop(inner);
        self.cv.notify_all();
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitJobError {
    /// The spec or design did not parse (400).
    Invalid(String),
    /// The job queue is at its bound — retry later (429).
    QueueFull,
    /// The engine is draining for shutdown (503).
    Draining,
}

impl std::fmt::Display for SubmitJobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitJobError::Invalid(msg) => write!(f, "invalid job: {msg}"),
            SubmitJobError::QueueFull => write!(f, "job queue full"),
            SubmitJobError::Draining => write!(f, "job engine draining"),
        }
    }
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Arc<Job>>,
    draining: bool,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    events: AtomicU64,
}

/// The engine: registry + bounded queue + worker pool over one fleet.
pub struct JobEngine {
    fleet: Arc<ModelFleet>,
    cfg: JobsConfig,
    queue: Mutex<QueueState>,
    cv: Condvar,
    jobs: Mutex<Vec<Arc<Job>>>,
    next_id: AtomicU64,
    counters: Counters,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobEngine {
    /// Creates the engine and starts its worker pool.
    pub fn start(fleet: Arc<ModelFleet>, cfg: JobsConfig) -> Arc<Self> {
        let engine = Arc::new(JobEngine {
            fleet,
            cfg: cfg.clone(),
            queue: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            jobs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = engine.workers.lock().expect("worker list poisoned");
        for w in 0..cfg.workers {
            let eng = Arc::clone(&engine);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mfaplace-job-{w}"))
                    .spawn(move || eng.worker_loop())
                    .expect("spawn job worker"),
            );
        }
        drop(workers);
        engine
    }

    /// The pool configuration.
    pub fn config(&self) -> &JobsConfig {
        &self.cfg
    }

    /// The fleet jobs resolve model predictors through.
    pub fn fleet(&self) -> &Arc<ModelFleet> {
        &self.fleet
    }

    /// Validates and enqueues a job.
    ///
    /// The design is parsed here (inline text, or read from a server-side
    /// path), so rejection for malformed designs is synchronous — a 400,
    /// not a queued job that fails later.
    ///
    /// # Errors
    ///
    /// [`SubmitJobError::Invalid`] for spec/design problems,
    /// [`SubmitJobError::QueueFull`] at the queue bound,
    /// [`SubmitJobError::Draining`] once shutdown began.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, SubmitJobError> {
        let design = match &spec.design {
            DesignSource::Inline(text) => read_design(text)
                .map_err(|e| SubmitJobError::Invalid(format!("bad inline design: {e}")))?,
            DesignSource::Path(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    SubmitJobError::Invalid(format!("cannot read design {path:?}: {e}"))
                })?;
                read_design(&text)
                    .map_err(|e| SubmitJobError::Invalid(format!("bad design {path:?}: {e}")))?
            }
        };

        let mut state = self.queue.lock().expect("job queue poisoned");
        if state.draining {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitJobError::Draining);
        }
        if state.queue.len() >= self.cfg.queue_bound {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitJobError::QueueFull);
        }
        let id = format!("job-{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        let job = Arc::new(Job::new(id, spec, design));
        state.queue.push_back(Arc::clone(&job));
        drop(state);
        self.cv.notify_one();
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.register(Arc::clone(&job));
        Ok(job)
    }

    fn register(&self, job: Arc<Job>) {
        let mut jobs = self.jobs.lock().expect("job registry poisoned");
        jobs.push(job);
        // Evict the oldest *terminal* jobs beyond the retention window;
        // live jobs are never evicted.
        let mut excess = jobs.len().saturating_sub(self.cfg.retain);
        if excess > 0 {
            jobs.retain(|j| {
                if excess > 0 && j.state().is_terminal() {
                    excess -= 1;
                    false
                } else {
                    true
                }
            });
        }
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .iter()
            .find(|j| j.id() == id)
            .cloned()
    }

    /// All retained jobs, oldest first.
    pub fn list(&self) -> Vec<Arc<Job>> {
        self.jobs.lock().expect("job registry poisoned").clone()
    }

    /// Requests cancellation. Queued jobs are cancelled immediately (they
    /// leave the queue); running jobs abort at the next flow event.
    /// Returns the state observed at the cancel request, or `None` for an
    /// unknown id.
    pub fn cancel(&self, id: &str) -> Option<JobState> {
        let job = self.get(id)?;
        job.cancel.store(true, Ordering::SeqCst);
        let mut state = self.queue.lock().expect("job queue poisoned");
        if let Some(pos) = state.queue.iter().position(|j| j.id() == id) {
            state.queue.remove(pos);
            drop(state);
            self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            job.finish(JobState::Cancelled, None, None);
            return Some(JobState::Cancelled);
        }
        drop(state);
        Some(job.state())
    }

    /// Stops accepting jobs and blocks until queued + running jobs have
    /// finished and all workers joined. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.queue.lock().expect("job queue poisoned");
            state.draining = true;
        }
        self.cv.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("job queue poisoned").queue.len()
    }

    /// Renders the `mfaplace_jobs_*` metric families.
    pub fn render_metrics(&self) -> String {
        let jobs = self.list();
        let running = jobs
            .iter()
            .filter(|j| j.state() == JobState::Running)
            .count();
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP mfaplace_jobs_{name} {help}\n# TYPE mfaplace_jobs_{name} counter\nmfaplace_jobs_{name} {value}\n"
            ));
        };
        counter(
            "submitted_total",
            "Jobs accepted into the queue.",
            self.counters.submitted.load(Ordering::Relaxed),
        );
        counter(
            "rejected_total",
            "Submissions refused (queue full or draining).",
            self.counters.rejected.load(Ordering::Relaxed),
        );
        counter(
            "completed_total",
            "Jobs that finished successfully.",
            self.counters.completed.load(Ordering::Relaxed),
        );
        counter(
            "failed_total",
            "Jobs that failed.",
            self.counters.failed.load(Ordering::Relaxed),
        );
        counter(
            "cancelled_total",
            "Jobs cancelled before completing.",
            self.counters.cancelled.load(Ordering::Relaxed),
        );
        counter(
            "events_total",
            "Flow progress events logged across all jobs.",
            self.counters.events.load(Ordering::Relaxed),
        );
        out.push_str(&format!(
            "# HELP mfaplace_jobs_running Jobs currently placing.\n# TYPE mfaplace_jobs_running gauge\nmfaplace_jobs_running {running}\n"
        ));
        out.push_str(&format!(
            "# HELP mfaplace_jobs_queue_depth Jobs waiting for a worker.\n# TYPE mfaplace_jobs_queue_depth gauge\nmfaplace_jobs_queue_depth {}\n",
            self.queue_depth()
        ));
        out.push_str(&format!(
            "# HELP mfaplace_jobs_workers Worker-pool size.\n# TYPE mfaplace_jobs_workers gauge\nmfaplace_jobs_workers {}\n",
            self.cfg.workers
        ));
        out.push_str(
            "# HELP mfaplace_jobs_job_state Per-job lifecycle state (1 = current).\n# TYPE mfaplace_jobs_job_state gauge\n",
        );
        for job in &jobs {
            out.push_str(&format!(
                "mfaplace_jobs_job_state{{job=\"{}\",state=\"{}\"}} 1\n",
                job.id(),
                job.state().name()
            ));
        }
        out.push_str(
            "# HELP mfaplace_jobs_job_events_total Event lines logged per job.\n# TYPE mfaplace_jobs_job_events_total counter\n",
        );
        for job in &jobs {
            out.push_str(&format!(
                "mfaplace_jobs_job_events_total{{job=\"{}\"}} {}\n",
                job.id(),
                job.event_count()
            ));
        }
        out
    }

    /// Registers the `mfaplace_jobs_*` families with `metrics` so they
    /// appear in `/metrics`. Holds only a [`Weak`] reference: dropping the
    /// engine (fleet → metrics → closure would otherwise cycle) silences
    /// the family instead of leaking it.
    pub fn register_metrics(self: &Arc<Self>, metrics: &Metrics) {
        let weak: Weak<JobEngine> = Arc::downgrade(self);
        metrics.register_external(Box::new(move || {
            weak.upgrade()
                .map(|engine| engine.render_metrics())
                .unwrap_or_default()
        }));
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.queue.lock().expect("job queue poisoned");
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    if state.draining {
                        return;
                    }
                    state = self.cv.wait(state).expect("job queue poisoned");
                }
            };
            self.run_job(&job);
        }
    }

    fn run_job(&self, job: &Arc<Job>) {
        if job.cancel.load(Ordering::SeqCst) {
            self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            job.finish(JobState::Cancelled, None, None);
            return;
        }
        job.set_state(JobState::Running);
        let spec = job.spec();
        let deadline = Instant::now() + spec.deadline.unwrap_or(self.cfg.default_deadline);

        // Resolve the predictor and the grid it prescribes.
        let mut slot_predictor;
        let mut rudy_predictor;
        let predictor_error;
        let grid;
        let predictor: &mut dyn CongestionPredictor = match spec.predictor {
            PredictorKind::Model => {
                let slot = match self.fleet.resolve(spec.slot.as_deref()) {
                    Ok(slot) => slot,
                    Err(err) => {
                        self.counters.failed.fetch_add(1, Ordering::Relaxed);
                        job.finish(JobState::Failed, Some(err), None);
                        return;
                    }
                };
                grid = slot.slot().spec().grid;
                slot_predictor = SlotPredictor::new(slot, deadline);
                predictor_error = slot_predictor.error_slot();
                &mut slot_predictor
            }
            PredictorKind::Rudy => {
                grid = spec.grid.unwrap_or(32);
                rudy_predictor = RudyPredictor::default();
                predictor_error = Arc::new(Mutex::new(None));
                &mut rudy_predictor
            }
        };

        let flow = MacroPlacementFlow::new(flow_config(spec, grid));
        let cancel = &job.cancel;
        let counters = &self.counters;
        let mut observe = |p: &FlowProgress| -> bool {
            job.push_event(progress_line(p));
            counters.events.fetch_add(1, Ordering::Relaxed);
            if cancel.load(Ordering::SeqCst) {
                return false;
            }
            if predictor_error
                .lock()
                .expect("predictor error lock poisoned")
                .is_some()
            {
                return false;
            }
            if Instant::now() >= deadline {
                let mut err = predictor_error
                    .lock()
                    .expect("predictor error lock poisoned");
                if err.is_none() {
                    *err = Some("job deadline exceeded".into());
                }
                return false;
            }
            true
        };

        let design = &job.design;
        let seed = spec.seed;
        let result = catch_unwind(AssertUnwindSafe(|| {
            flow.run_with_observer(design, predictor, seed, &mut observe)
        }));

        match result {
            Ok(Ok(outcome)) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                let summary = format!(
                    "s_score={} s_r={} wirelength={} overflow={}",
                    outcome.score.s_score(),
                    outcome.score.s_r(),
                    outcome.wirelength,
                    outcome.overflow
                );
                job.finish(JobState::Completed, None, Some(summary));
            }
            Ok(Err(_aborted)) => {
                if job.cancel.load(Ordering::SeqCst) {
                    self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    job.finish(JobState::Cancelled, None, None);
                } else {
                    let err = predictor_error
                        .lock()
                        .expect("predictor error lock poisoned")
                        .clone()
                        .unwrap_or_else(|| "flow aborted".into());
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                    job.finish(JobState::Failed, Some(err), None);
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "flow panicked".into());
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                job.finish(
                    JobState::Failed,
                    Some(format!("flow panicked: {msg}")),
                    None,
                );
            }
        }
    }
}

/// Maps a job spec onto a full flow configuration: preset by flow name,
/// GP iterations capped like the CLI's `place --iterations`, placement
/// and scoring grids forced to the predictor's grid.
fn flow_config(spec: &JobSpec, grid: usize) -> FlowConfig {
    let placer = match spec.flow.as_str() {
        "utda" => PlacerFlowConfig::utda_like(),
        "seu" => PlacerFlowConfig::seu_like(),
        "mpku" => PlacerFlowConfig::mpku_like(),
        _ => PlacerFlowConfig::model_driven(),
    };
    let mut cfg = FlowConfig {
        placer,
        ..FlowConfig::default()
    };
    if let Some(n) = spec.iterations {
        cfg.placer.gp_stage1.iterations = cfg.placer.gp_stage1.iterations.min(n);
        cfg.placer.gp_stage2.iterations = cfg.placer.gp_stage2.iterations.min(n / 2 + 1);
    }
    cfg.placer.grid_w = grid;
    cfg.placer.grid_h = grid;
    cfg.router.grid_w = grid;
    cfg.router.grid_h = grid;
    cfg
}

/// Escapes a string for embedding in a JSON value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The terminal NDJSON line.
fn done_line(state: JobState, error: Option<&str>) -> String {
    match error {
        Some(err) => format!(
            "{{\"event\":\"done\",\"state\":\"{}\",\"error\":\"{}\"}}",
            state.name(),
            json_escape(err)
        ),
        None => format!("{{\"event\":\"done\",\"state\":\"{}\"}}", state.name()),
    }
}

/// Renders one flow progress event as an NDJSON line.
///
/// Deliberately free of job ids and timestamps: identical flows must emit
/// byte-identical lines regardless of when or alongside what they run.
pub fn progress_line(progress: &FlowProgress) -> String {
    use mfaplace_placer::FlowEvent;
    match progress {
        FlowProgress::Placement(event) => match event {
            FlowEvent::StageStart { stage, iterations } => {
                format!("{{\"event\":\"stage\",\"stage\":{stage},\"iterations\":{iterations}}}")
            }
            FlowEvent::GpIteration {
                stage,
                iteration,
                hpwl,
                overflow,
            } => format!(
                "{{\"event\":\"gp\",\"stage\":{stage},\"iteration\":{iteration},\"hpwl\":{hpwl},\
                 \"overflow_lut\":{},\"overflow_ff\":{},\"overflow_dsp\":{},\
                 \"overflow_bram\":{},\"overflow_uram\":{}}}",
                overflow.lut, overflow.ff, overflow.dsp, overflow.bram, overflow.uram
            ),
            FlowEvent::Predicted {
                round,
                mean_level,
                max_level,
                hot_tiles,
            } => format!(
                "{{\"event\":\"predicted\",\"round\":{round},\"mean_level\":{mean_level},\
                 \"max_level\":{max_level},\"hot_tiles\":{hot_tiles}}}"
            ),
            FlowEvent::Inflated { round, stats } => format!(
                "{{\"event\":\"inflated\",\"round\":{round},\"instances\":{},\
                 \"added_area\":{},\"tau_cell\":{},\"tau_macro\":{}}}",
                stats.inflated_instances, stats.added_area, stats.tau_cell, stats.tau_macro
            ),
            FlowEvent::Legalized { hpwl } => {
                format!("{{\"event\":\"legalized\",\"hpwl\":{hpwl}}}")
            }
        },
        FlowProgress::Routed {
            wirelength,
            overflow,
        } => {
            format!("{{\"event\":\"routed\",\"wirelength\":{wirelength},\"overflow\":{overflow}}}")
        }
        FlowProgress::Scored {
            s_ir,
            s_dr,
            s_r,
            s_score,
        } => format!(
            "{{\"event\":\"scored\",\"s_ir\":{s_ir},\"s_dr\":{s_dr},\"s_r\":{s_r},\
             \"s_score\":{s_score}}}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;
    use mfaplace_fpga::io::write_design;
    use mfaplace_serve::{BatchConfig, Metrics};

    fn tiny_design_text() -> String {
        let d = DesignPreset::design_116()
            .with_scale(1024, 128, 64)
            .generate(1);
        write_design(&d)
    }

    fn rudy_spec(text: &str) -> JobSpec {
        crate::spec::parse_spec(&format!(
            "predictor=rudy seed=3 iterations=4 grid=16\n---DESIGN---\n{text}"
        ))
        .unwrap()
    }

    fn empty_fleet() -> Arc<ModelFleet> {
        Arc::new(ModelFleet::new(
            Arc::new(Metrics::new()),
            BatchConfig::default(),
        ))
    }

    fn engine_with(workers: usize, queue_bound: usize) -> Arc<JobEngine> {
        JobEngine::start(
            empty_fleet(),
            JobsConfig {
                workers,
                queue_bound,
                default_deadline: Duration::from_secs(60),
                retain: 16,
            },
        )
    }

    fn wait_terminal(job: &Arc<Job>) -> JobState {
        let mut seen = 0;
        loop {
            let (lines, state) = job.wait_events(seen, Duration::from_secs(30));
            seen += lines.len();
            if state.is_terminal() && lines.is_empty() {
                return state;
            }
        }
    }

    #[test]
    fn rudy_job_completes_on_an_empty_fleet() {
        let engine = engine_with(1, 4);
        let job = engine.submit(rudy_spec(&tiny_design_text())).unwrap();
        assert_eq!(wait_terminal(&job), JobState::Completed);
        let (lines, _) = job.wait_events(0, Duration::from_secs(1));
        assert!(lines.iter().any(|l| l.contains("\"event\":\"predicted\"")));
        assert!(lines.iter().any(|l| l.contains("\"event\":\"scored\"")));
        assert_eq!(
            lines.last().unwrap(),
            "{\"event\":\"done\",\"state\":\"completed\"}"
        );
        assert!(job.summary().unwrap().contains("s_score="));
        engine.shutdown();
    }

    #[test]
    fn queue_bound_rejects_excess_submissions() {
        // No workers: nothing drains the queue.
        let engine = engine_with(0, 2);
        let text = tiny_design_text();
        engine.submit(rudy_spec(&text)).unwrap();
        engine.submit(rudy_spec(&text)).unwrap();
        assert_eq!(
            engine.submit(rudy_spec(&text)).unwrap_err(),
            SubmitJobError::QueueFull
        );
        assert_eq!(engine.queue_depth(), 2);
        engine.shutdown();
    }

    #[test]
    fn queued_jobs_cancel_immediately() {
        let engine = engine_with(0, 4);
        let job = engine.submit(rudy_spec(&tiny_design_text())).unwrap();
        assert_eq!(engine.cancel(job.id()), Some(JobState::Cancelled));
        assert_eq!(job.state(), JobState::Cancelled);
        assert_eq!(engine.queue_depth(), 0);
        let (lines, _) = job.wait_events(0, Duration::from_secs(1));
        assert_eq!(
            lines.last().unwrap(),
            "{\"event\":\"done\",\"state\":\"cancelled\"}"
        );
        assert_eq!(engine.cancel("job-999"), None);
        engine.shutdown();
    }

    #[test]
    fn model_job_without_slots_fails_cleanly() {
        let engine = engine_with(1, 4);
        let spec = crate::spec::parse_spec(&format!(
            "predictor=model seed=1 iterations=2\n---DESIGN---\n{}",
            tiny_design_text()
        ))
        .unwrap();
        let job = engine.submit(spec).unwrap();
        assert_eq!(wait_terminal(&job), JobState::Failed);
        assert!(job.error().is_some());
        engine.shutdown();
    }

    #[test]
    fn draining_engine_refuses_submissions() {
        let engine = engine_with(1, 4);
        engine.shutdown();
        assert_eq!(
            engine.submit(rudy_spec(&tiny_design_text())).unwrap_err(),
            SubmitJobError::Draining
        );
    }

    #[test]
    fn invalid_designs_are_rejected_synchronously() {
        let engine = engine_with(0, 4);
        let err = engine
            .submit(
                crate::spec::parse_spec("predictor=rudy\n---DESIGN---\nnot a design\n").unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, SubmitJobError::Invalid(_)));
        let err = engine
            .submit(crate::spec::parse_spec("predictor=rudy design=/nonexistent/x.nl").unwrap())
            .unwrap_err();
        assert!(matches!(err, SubmitJobError::Invalid(_)));
        engine.shutdown();
    }

    #[test]
    fn metrics_render_lists_families_and_jobs() {
        let engine = engine_with(0, 4);
        let job = engine.submit(rudy_spec(&tiny_design_text())).unwrap();
        let text = engine.render_metrics();
        assert!(text.contains("mfaplace_jobs_submitted_total 1"));
        assert!(text.contains("mfaplace_jobs_queue_depth 1"));
        assert!(text.contains(&format!(
            "mfaplace_jobs_job_state{{job=\"{}\",state=\"queued\"}} 1",
            job.id()
        )));
        // Registered through Metrics, the families surface in render().
        let metrics = Arc::new(Metrics::new());
        engine.register_metrics(&metrics);
        assert!(metrics.render().contains("mfaplace_jobs_workers 0"));
        engine.shutdown();
    }

    #[test]
    fn done_lines_escape_errors() {
        assert_eq!(
            done_line(JobState::Failed, Some("bad \"slot\"\nline")),
            "{\"event\":\"done\",\"state\":\"failed\",\"error\":\"bad \\\"slot\\\"\\nline\"}"
        );
    }
}
