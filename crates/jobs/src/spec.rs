//! The job-submission wire format.
//!
//! A `POST /jobs` body is a header of whitespace-separated `key=value`
//! options, optionally followed by a line containing only `---DESIGN---`
//! and the design text inline:
//!
//! ```text
//! flow=ours seed=7 slot=default deadline_ms=600000
//! ---DESIGN---
//! design design_116
//! arch 168 120
//! …
//! ```
//!
//! Designs come either inline (the usual remote case) or by server-side
//! path (`design=/path/to/design.nl`, for co-located clients) — exactly
//! one of the two.

use std::time::Duration;

/// Which congestion predictor drives inflation inside the job's flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// The learned model, resolved through the fleet slot named by the
    /// spec (or the default slot). Predictions go through the slot's
    /// micro-batcher and coalesce with other jobs' forwards.
    Model,
    /// The RUDY analytical baseline — no model involved, runs even on a
    /// slotless fleet.
    Rudy,
}

impl PredictorKind {
    /// Wire name (`model` / `rudy`).
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Model => "model",
            PredictorKind::Rudy => "rudy",
        }
    }
}

/// Where the design text comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignSource {
    /// Design text shipped in the request body after `---DESIGN---`.
    Inline(String),
    /// Server-side path to a `.nl` design file.
    Path(String),
}

/// A parsed placement-job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Flow preset: `ours` (default), `utda`, `seu` or `mpku`.
    pub flow: String,
    /// Placement seed.
    pub seed: u64,
    /// Fleet slot whose model drives inflation (`None` = default slot).
    pub slot: Option<String>,
    /// Predictor kind (default [`PredictorKind::Model`]).
    pub predictor: PredictorKind,
    /// Whole-job deadline; `None` uses the engine default.
    pub deadline: Option<Duration>,
    /// Optional cap on GP iterations (stage 1 capped at this, stage 2 at
    /// half plus one — same mapping as the CLI `place --iterations`).
    pub iterations: Option<usize>,
    /// Congestion/routing grid for RUDY jobs (model jobs always use the
    /// slot's grid). Default 32.
    pub grid: Option<usize>,
    /// The design to place.
    pub design: DesignSource,
}

/// The marker separating the option header from inline design text.
pub const DESIGN_MARKER: &str = "---DESIGN---";

/// Flow preset names accepted in `flow=`.
pub const FLOW_NAMES: [&str; 4] = ["ours", "utda", "seu", "mpku"];

/// Parses a `POST /jobs` body.
///
/// # Errors
///
/// Returns a human-readable message naming the offending option.
pub fn parse_spec(body: &str) -> Result<JobSpec, String> {
    let (header, inline) = match body.split_once(DESIGN_MARKER) {
        Some((head, rest)) => {
            let design = rest.trim_start_matches(['\r', '\n']).to_owned();
            if design.trim().is_empty() {
                return Err("inline design after ---DESIGN--- is empty".into());
            }
            (head, Some(design))
        }
        None => (body, None),
    };

    let mut spec = JobSpec {
        flow: "ours".into(),
        seed: 1,
        slot: None,
        predictor: PredictorKind::Model,
        deadline: None,
        iterations: None,
        grid: None,
        design: DesignSource::Inline(String::new()),
    };
    let mut path: Option<String> = None;

    for token in header.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            return Err(format!("bad option {token:?}: expected key=value"));
        };
        match key {
            "flow" => {
                if !FLOW_NAMES.contains(&value) {
                    return Err(format!(
                        "unknown flow {value:?}; expected one of {}",
                        FLOW_NAMES.join(", ")
                    ));
                }
                spec.flow = value.to_owned();
            }
            "seed" => {
                spec.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
            }
            "slot" => spec.slot = Some(value.to_owned()),
            "predictor" => {
                spec.predictor = match value {
                    "model" => PredictorKind::Model,
                    "rudy" => PredictorKind::Rudy,
                    _ => return Err(format!("unknown predictor {value:?} (model|rudy)")),
                }
            }
            "deadline_ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad deadline_ms {value:?}"))?;
                if ms == 0 {
                    return Err("deadline_ms must be positive".into());
                }
                spec.deadline = Some(Duration::from_millis(ms));
            }
            "iterations" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("bad iterations {value:?}"))?;
                if n == 0 {
                    return Err("iterations must be positive".into());
                }
                spec.iterations = Some(n);
            }
            "grid" => {
                let n: usize = value.parse().map_err(|_| format!("bad grid {value:?}"))?;
                if n == 0 || n > 1024 {
                    return Err(format!("grid {n} out of range 1..=1024"));
                }
                spec.grid = Some(n);
            }
            "design" => path = Some(value.to_owned()),
            _ => return Err(format!("unknown option {key:?}")),
        }
    }

    spec.design = match (path, inline) {
        (Some(_), Some(_)) => {
            return Err("give either design=<path> or an inline design, not both".into())
        }
        (Some(p), None) => DesignSource::Path(p),
        (None, Some(text)) => DesignSource::Inline(text),
        (None, None) => {
            return Err("no design: pass design=<path> or inline text after ---DESIGN---".into())
        }
    };
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_header_with_inline_design() {
        let body = "flow=seu seed=9 slot=canary predictor=model deadline_ms=1000 \
                    iterations=6 grid=16\n---DESIGN---\ndesign d\narch 8 8\n";
        let spec = parse_spec(body).unwrap();
        assert_eq!(spec.flow, "seu");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.slot.as_deref(), Some("canary"));
        assert_eq!(spec.predictor, PredictorKind::Model);
        assert_eq!(spec.deadline, Some(Duration::from_millis(1000)));
        assert_eq!(spec.iterations, Some(6));
        assert_eq!(spec.grid, Some(16));
        assert_eq!(
            spec.design,
            DesignSource::Inline("design d\narch 8 8\n".into())
        );
    }

    #[test]
    fn defaults_are_ours_model_seed_one() {
        let spec = parse_spec("design=/tmp/d.nl").unwrap();
        assert_eq!(spec.flow, "ours");
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.slot, None);
        assert_eq!(spec.predictor, PredictorKind::Model);
        assert_eq!(spec.design, DesignSource::Path("/tmp/d.nl".into()));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse_spec("flow=bogus design=/d.nl").is_err());
        assert!(parse_spec("seed=abc design=/d.nl").is_err());
        assert!(parse_spec("predictor=oracle design=/d.nl").is_err());
        assert!(parse_spec("deadline_ms=0 design=/d.nl").is_err());
        assert!(parse_spec("noequals design=/d.nl").is_err());
        assert!(parse_spec("mystery=1 design=/d.nl").is_err());
        // No design at all, both designs, empty inline.
        assert!(parse_spec("flow=ours").is_err());
        assert!(parse_spec("design=/d.nl\n---DESIGN---\ndesign d\n").is_err());
        assert!(parse_spec("flow=ours\n---DESIGN---\n\n").is_err());
    }
}
