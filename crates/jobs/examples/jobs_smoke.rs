//! Placement-as-a-service smoke run: boots a one-slot fleet with the jobs
//! extension, submits two identical jobs, follows both NDJSON streams to
//! completion concurrently and checks they are byte-identical — the
//! determinism contract of the job engine, exercised over real HTTP.
//!
//! Run: `cargo run --release -p mfaplace-jobs --example jobs_smoke`

use std::sync::Arc;
use std::time::{Duration, Instant};

use mfaplace_core::loader::{init_checkpoint, LoadOptions};
use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::io::write_design;
use mfaplace_jobs::{JobEngine, JobsConfig, JobsExtension};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_serve::{
    client, serve_fleet_with, BatchConfig, Metrics, ModelFleet, ServeConfig, SlotLimits,
};

fn main() {
    let ckpt = std::env::temp_dir()
        .join("jobs_smoke.mfaw")
        .to_string_lossy()
        .into_owned();
    let mut spec = ArchSpec::new(Arch::UNet, 16);
    spec.base_channels = 2;
    init_checkpoint(&spec, 7, &ckpt).expect("init checkpoint");

    let batch = BatchConfig {
        max_batch: 8,
        batch_window: Duration::from_millis(300),
        queue_bound: 64,
    };
    let metrics = Arc::new(Metrics::new());
    let fleet = Arc::new(ModelFleet::new(metrics.clone(), batch));
    fleet
        .add_slot(
            "default",
            &ckpt,
            LoadOptions::default(),
            SlotLimits::default(),
        )
        .expect("add slot");
    let engine = JobEngine::start(
        Arc::clone(&fleet),
        JobsConfig {
            workers: 2,
            ..JobsConfig::default()
        },
    );
    engine.register_metrics(&metrics);
    let server = serve_fleet_with(
        fleet,
        metrics,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            batch,
            ..ServeConfig::default()
        },
        vec![Arc::new(JobsExtension::new(engine))],
    )
    .expect("bind");
    let addr = server.addr().to_string();
    println!("jobs server on http://{addr}");

    let design = DesignPreset::design_116()
        .with_scale(1024, 128, 64)
        .generate(1);
    let body = format!(
        "seed=5 iterations=6\n---DESIGN---\n{}",
        write_design(&design)
    );

    let submit = |label: &str| -> String {
        let r = client::request(&addr, "POST", "/jobs", &[], body.as_bytes()).expect("submit");
        assert_eq!(r.status, 200, "{}", r.text());
        let id = r
            .text()
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("id "))
            .expect("job id")
            .to_owned();
        println!("submitted {label} as {id}");
        id
    };
    let watch = |id: &str| -> Vec<String> {
        let mut lines = Vec::new();
        let path = format!("/jobs/{id}/events");
        let status = client::stream_lines(&addr, "GET", &path, &[], b"", &mut |line| {
            if !line.is_empty() {
                lines.push(line.to_owned());
            }
            true
        })
        .expect("stream");
        assert_eq!(status, 200);
        lines
    };

    // Two identical jobs, placed concurrently against the one slot.
    let start = Instant::now();
    let id_a = submit("job A");
    let id_b = submit("job B");
    let (events_a, events_b) = std::thread::scope(|s| {
        let ta = s.spawn(|| watch(&id_a));
        let tb = s.spawn(|| watch(&id_b));
        (ta.join().unwrap(), tb.join().unwrap())
    });
    println!(
        "both jobs completed in {:.2}s ({} events each)",
        start.elapsed().as_secs_f64(),
        events_a.len()
    );

    assert_eq!(
        events_a.last().map(String::as_str),
        Some("{\"event\":\"done\",\"state\":\"completed\"}"),
        "job A must complete: {events_a:#?}"
    );
    assert_eq!(
        events_a, events_b,
        "concurrent identical jobs must stream identical events"
    );

    // The jobs metric families surface in the shared scrape.
    let scrape = client::request(&addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .text();
    assert!(
        scrape.contains("mfaplace_jobs_completed_total 2"),
        "{scrape}"
    );
    for line in scrape
        .lines()
        .filter(|l| l.starts_with("mfaplace_jobs_") && !l.starts_with("# "))
    {
        println!("  {line}");
    }

    server.shutdown();
    server.join();
    std::fs::remove_file(&ckpt).ok();
    println!("jobs smoke OK: identical streams, clean drain");
}
