//! `mfaplace` — facade crate for the reproduction of *"Multiscale Feature
//! Attention and Transformer Based Congestion Prediction for
//! Routability-Driven FPGA Macro Placement"* (DATE 2025).
//!
//! This crate re-exports the whole workspace so downstream users (and the
//! examples/integration tests in this repository) can depend on a single
//! crate:
//!
//! - [`tensor`] — dense f32 tensors and compute kernels
//! - [`autograd`] — tape-based reverse-mode automatic differentiation
//! - [`nn`] — layers, losses and optimizers
//! - [`fpga`] — FPGA fabric model, netlists, synthetic benchmarks, features
//! - [`router`] — congestion simulation, routing and contest scoring
//! - [`placer`] — analytical global placement, inflation and legalization
//! - [`models`] — the paper's model and the three published baselines
//! - [`core`] — dataset generation, training, metrics and the full flow
//! - [`serve`] — batched HTTP inference service with checkpoint hot-reload
//! - [`jobs`] — placement-as-a-service: async placement jobs over `/jobs`
//!
//! # Quickstart
//!
//! ```no_run
//! use mfaplace::fpga::design::DesignPreset;
//! use mfaplace::core::flow::{MacroPlacementFlow, FlowConfig};
//!
//! let design = DesignPreset::design_116().generate(42);
//! let flow = MacroPlacementFlow::new(FlowConfig::default());
//! let outcome = flow.run(&design, 42);
//! println!("routability score S_R = {}", outcome.score.s_r());
//! ```

pub use mfaplace_autograd as autograd;
pub use mfaplace_core as core;
pub use mfaplace_fpga as fpga;
pub use mfaplace_infer as infer;
pub use mfaplace_jobs as jobs;
pub use mfaplace_models as models;
pub use mfaplace_nn as nn;
pub use mfaplace_placer as placer;
pub use mfaplace_router as router;
pub use mfaplace_serve as serve;
pub use mfaplace_tensor as tensor;
