//! `mfaplace` command-line tool: generate benchmarks, place, route, score
//! and render — the end-user face of the reproduction.
//!
//! ```sh
//! mfaplace generate   --design 116 --seed 1 --out design.nl
//! mfaplace place      --design design.nl --flow seu --seed 1 --out placement.pl
//! mfaplace place      --design design.nl --model ours.mfaw --out placement.pl
//! mfaplace route      --design design.nl --placement placement.pl
//! mfaplace features   --design design.nl --placement placement.pl --grid 48 --out feats
//! mfaplace render     --design design.nl --placement placement.pl --out place.ppm
//! mfaplace init-model --arch ours --grid 32 --out ours.mfaw
//! mfaplace serve      --model ours.mfaw --addr 127.0.0.1:8953
//! mfaplace serve      --model a=ours.mfaw --model b=ablation.mfaw
//! mfaplace predict    --addr 127.0.0.1:8953 --design design.nl --placement placement.pl
//! mfaplace predict    --addr 127.0.0.1:8953 --slot b --design design.nl --placement placement.pl
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use mfaplace::core::dataset::{build_design_dataset, DatasetConfig};
use mfaplace::core::flow::{calibrated_router_for, simulated_pnr_hours};
use mfaplace::core::loader::{
    content_hash, init_checkpoint, load_predictor, peek_meta, peek_train_state, LoadOptions,
};
use mfaplace::core::predictor::Engine;
use mfaplace::core::train::{TrainConfig, Trainer};
use mfaplace::core::{compile_for_serving, is_artifact, read_artifact, Precision};
use mfaplace::fpga::design::{Design, DesignPreset};
use mfaplace::fpga::features::FeatureStack;
use mfaplace::fpga::gridmap::GridMap;
use mfaplace::fpga::io;
use mfaplace::fpga::viz::{render_heatmap, render_placement};
use mfaplace::jobs::{JobEngine, JobsConfig, JobsExtension};
use mfaplace::models::{Arch, ArchSpec};
use mfaplace::placer::flows::{FlowConfig, PlacementFlow, RudyPredictor};
use mfaplace::router::congestion::CongestionAnalysis;
use mfaplace::router::detailed::detailed_route_iterations;
use mfaplace::router::global::GlobalRouter;
use mfaplace::router::score::{RoutabilityScore, ScoreInputs};
use mfaplace::serve::{
    client, serve_fleet_with, Metrics, ModelFleet, ServeConfig, SlotLimits, DEFAULT_SLOT,
};
use mfaplace::tensor::simd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    };
    // Per-run timing report, opt-in: timers always record, but the report
    // only prints when MFAPLACE_TIMERS is explicitly set (and not "0").
    if std::env::var("MFAPLACE_TIMERS").is_ok_and(|v| v != "0") {
        eprint!("{}", mfaplace_rt::timer::report());
    }
    code
}

const USAGE: &str = "usage:
  mfaplace generate   --design <116|120|136|156|176|180|190|197|227|230|237> \\
                      [--seed N] [--preset small|large] [--scale cells,dsp,bram] \\
                      --out <file.nl>
  mfaplace place      --design <file.nl> [--flow ours|utda|seu|mpku] [--seed N] \\
                      [--iterations N] [--model <file.mfaw> [--arch ours|unet|pgnn|pros2] \\
                      [--grid N] [--channels N]] --out <file.pl>
  mfaplace route      --design <file.nl> --placement <file.pl> [--grid N]
  mfaplace features   --design <file.nl> --placement <file.pl> [--grid N] --out <prefix>
  mfaplace render     --design <file.nl> --placement <file.pl> --out <file.ppm>
  mfaplace init-model [--arch ours|unet|pgnn|pros2] [--grid N] [--channels N] \\
                      [--seed N] --out <file.mfaw>
  mfaplace train      --design <file.nl> --out <file.mfaw> [--resume] \\
                      [--arch ours|unet|pgnn|pros2] [--grid N] [--channels N] \\
                      [--epochs N] [--batch N] [--lr F] [--seed N] [--workers N] \\
                      [--save-every N] [--stop-after N] [--log <file.jsonl>] \\
                      [--placements N] [--iterations N]
  mfaplace model-info --model <file.mfaw|file.mfaq> [--grid N]
  mfaplace kernels    (report detected/active SIMD kernel backend)
  mfaplace compile    --model <file.mfaw> --calib <file.nl> [--calib <file.nl> ...] \\
                      [--placements N] [--iterations N] [--seed N] \\
                      [--precision int8|f16] [--fold-bn] --out <file.mfaq>
  mfaplace serve      --model [name=]<file.mfaw|file.mfaq> [--model name=<path> ...] \\
                      [--addr host:port] [--engine tape|plan|quant] \\
                      [--arch ...] [--grid N] [--channels N]   (v1 checkpoints)
  mfaplace predict    --addr host:port --design <file.nl> --placement <file.pl> \\
                      [--slot name] [--engine tape|plan|quant] [--out <file.ppm>]
  mfaplace job submit --addr host:port --design <file.nl> [--flow ours|utda|seu|mpku] \\
                      [--seed N] [--slot name] [--predictor model|rudy] \\
                      [--iterations N] [--grid N] [--deadline-ms N] [--watch]
  mfaplace job status --addr host:port --id <job-N>
  mfaplace job watch  --addr host:port --id <job-N>
  mfaplace job cancel --addr host:port --id <job-N>
  mfaplace job list   --addr host:port

serve loads one hot-swappable slot per --model (repeatable; a bare path
names its slot \"default\", and the first slot is the default routing
target). Requests pick a slot with the x-mfaplace-model header or a
/models/<name>/... path; manage slots at runtime via POST /admin/slots
(add/remove/reload). All slots compile into one shared plan cache sized
by MFAPLACE_PLAN_CACHE_MB; serve also honors MFAPLACE_MAX_BATCH,
MFAPLACE_BATCH_WINDOW_MS and MFAPLACE_QUEUE_BOUND, and stops with
POST /admin/shutdown. The inference engine defaults to the compiled plan
(bitwise identical to the tape); --engine or MFAPLACE_ENGINE selects it,
and predict's --engine switches the remote server (its --slot's slot)
via POST /admin/engine before predicting.
compile runs the offline quantization step: it calibrates activation
ranges over placements of the --calib designs and writes a self-contained
serving artifact (checkpoint + calibration + precision). serve, predict
and model-info accept the artifact anywhere a checkpoint is accepted and
default it to the quant engine; the int8 arena never changes the predicted
congestion level map, and anything calibration cannot cover stays f32.
serve also runs the placement job engine at /jobs (sized by
MFAPLACE_JOB_WORKERS, MFAPLACE_JOB_QUEUE and MFAPLACE_JOB_DEADLINE_MS);
job submit ships the design inline and prints the job id, job watch
follows the NDJSON per-iteration event stream to completion.
generate --preset large builds ~1/16-scale designs (default small is
~1/64); an explicit --scale overrides the preset.
train honors MFAPLACE_TRAIN_WORKERS when --workers is not given; --resume
continues bitwise-exactly from the checkpoint at --out if it exists.
every subcommand accepts --kernels auto|scalar|avx2|neon to pin the SIMD
kernel backend (strict; the MFAPLACE_KERNELS env var is the forgiving
equivalent, falling back to auto-detection with a warning). scalar is the
bitwise-golden reference; vector backends carry a documented 1e-5-of-scale
tolerance and never change the predicted congestion level map.";

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    if cmd == "job" {
        return run_job(&args[1..]);
    }
    let flags = parse_flags(&args[1..])?;
    apply_kernels_flag(&flags)?;
    match cmd.as_str() {
        "kernels" => cmd_kernels(),
        "generate" => cmd_generate(&flags),
        "place" => cmd_place(&flags),
        "route" => cmd_route(&flags),
        "features" => cmd_features(&flags),
        "render" => cmd_render(&flags),
        "init-model" => cmd_init_model(&flags),
        "train" => cmd_train(&flags),
        "model-info" => cmd_model_info(&flags),
        "compile" => cmd_compile(&flags),
        "serve" => cmd_serve(&flags),
        "predict" => cmd_predict(&flags),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// `mfaplace job <action> --flags…` — the action is positional, everything
/// after it is ordinary flags.
fn run_job(args: &[String]) -> Result<(), String> {
    let Some(action) = args.first() else {
        return Err("job needs an action: submit, status, watch, cancel or list".into());
    };
    let flags = parse_flags(&args[1..])?;
    match action.as_str() {
        "submit" => cmd_job_submit(&flags),
        "status" => cmd_job_status(&flags),
        "watch" => cmd_job_watch(&flags),
        "cancel" => cmd_job_cancel(&flags),
        "list" => cmd_job_list(&flags),
        other => Err(format!(
            "unknown job action {other:?} (submit, status, watch, cancel, list)"
        )),
    }
}

/// `--arch/--grid/--channels` overrides for loading v1 checkpoints (v2
/// files are self-describing and ignore these).
fn load_options(flags: &Flags) -> Result<LoadOptions, String> {
    let arch = match flags.get("arch") {
        None => None,
        Some(s) => Some(s.parse::<Arch>()?),
    };
    Ok(LoadOptions {
        arch,
        grid: match flags.get("grid") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value for --grid: {v:?}"))?,
            ),
        },
        base_channels: match flags.get("channels") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value for --channels: {v:?}"))?,
            ),
        },
    })
}

/// `--kernels auto|scalar|avx2|neon` — strict: an unsupported backend is a
/// CLI error here, unlike the forgiving `MFAPLACE_KERNELS` environment
/// fallback. Applied before every subcommand so `serve`, `predict`,
/// `train` and `model-info` all honor it.
fn apply_kernels_flag(flags: &Flags) -> Result<(), String> {
    if let Some(v) = flags.get("kernels") {
        let choice =
            simd::Backend::parse(v).map_err(|e| format!("invalid value for --kernels: {e}"))?;
        simd::force(choice)?;
    }
    Ok(())
}

/// `mfaplace kernels`: reports the runtime kernel-backend dispatch state
/// and the plan-scheduler worker resolution.
fn cmd_kernels() -> Result<(), String> {
    let names: Vec<&str> = simd::supported().iter().map(|b| b.name()).collect();
    println!("active backend: {}", simd::active().name());
    println!("detected best:  {}", simd::detect().name());
    println!("supported:      {}", names.join(" "));
    println!(
        "int8 GEMM:      exact i32 accumulation, bitwise across backends \
         (max contraction {})",
        simd::I8_GEMM_MAX_K,
    );
    println!(
        "plan workers:   {} (MFAPLACE_PLAN_WORKERS{}, pool budget {})",
        mfaplace_infer::plan_workers_from_env(),
        std::env::var("MFAPLACE_PLAN_WORKERS")
            .map(|v| format!("={v}"))
            .unwrap_or_else(|_| " unset".to_string()),
        mfaplace_rt::pool::max_threads(),
    );
    Ok(())
}

/// `--engine tape|plan|quant`; `None` leaves the `MFAPLACE_ENGINE` default.
fn parse_engine(flags: &Flags) -> Result<Option<Engine>, String> {
    match flags.get("engine") {
        None => Ok(None),
        Some(v) => Engine::parse(v)
            .map(Some)
            .ok_or_else(|| format!("invalid value for --engine: {v:?} (use tape, plan or quant)")),
    }
}

/// Flags that take no value (presence means "on").
const BOOL_FLAGS: &[&str] = &["resume", "watch", "fold-bn"];

/// Parsed command-line flags. Every flag may repeat; `get` returns the
/// last occurrence (so `--grid 16 --grid 32` means 32) and `all` returns
/// every occurrence in order (used by `serve --model`).
#[derive(Debug, Default)]
struct Flags(HashMap<String, Vec<String>>);

impl Flags {
    /// The last value given for `--name`, if any.
    fn get(&self, name: &str) -> Option<&String> {
        self.0.get(name).and_then(|v| v.last())
    }

    /// Every value given for `--name`, in command-line order.
    fn all(&self, name: &str) -> &[String] {
        self.0.get(name).map_or(&[][..], Vec::as_slice)
    }

    fn contains_key(&self, name: &str) -> bool {
        self.0.contains_key(name)
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags: HashMap<String, Vec<String>> = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, found {key:?}"));
        };
        if BOOL_FLAGS.contains(&name) {
            flags.entry(name.to_string()).or_default().push("1".into());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags
            .entry(name.to_string())
            .or_default()
            .push(value.clone());
    }
    Ok(Flags(flags))
}

fn get<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn get_num<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{name}: {v:?}")),
    }
}

fn load_design(flags: &Flags) -> Result<Design, String> {
    let path = get(flags, "design")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    io::read_design(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_placement(flags: &Flags) -> Result<mfaplace::fpga::Placement, String> {
    let path = get(flags, "placement")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    io::read_placement(&text).map_err(|e| format!("{path}: {e}"))
}

fn preset_by_name(name: &str) -> Result<DesignPreset, String> {
    let all = DesignPreset::contest_suite()
        .into_iter()
        .chain([DesignPreset::design_237()]);
    for p in all {
        if p.name() == format!("Design_{name}") || p.name() == name {
            return Ok(p);
        }
    }
    Err(format!("unknown design {name:?}"))
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let preset = preset_by_name(get(flags, "design")?)?;
    let seed: u64 = get_num(flags, "seed", 1)?;
    // --preset picks a named scale; an explicit --scale wins over it.
    let preset_scale = match flags.get("preset").map(String::as_str) {
        None | Some("small") => (128, 24, 12),
        Some("large") => (32, 6, 3),
        Some(other) => return Err(format!("unknown preset {other:?} (small|large)")),
    };
    let preset = match flags.get("scale") {
        None => preset.with_scale(preset_scale.0, preset_scale.1, preset_scale.2),
        Some(s) => {
            let parts: Vec<&str> = s.split(',').collect();
            if parts.len() != 3 {
                return Err("--scale needs cells,dsp,bram".into());
            }
            preset.with_scale(
                parts[0].parse().map_err(|_| "bad cells divisor")?,
                parts[1].parse().map_err(|_| "bad dsp divisor")?,
                parts[2].parse().map_err(|_| "bad bram divisor")?,
            )
        }
    };
    let design = preset.generate(seed);
    let out = get(flags, "out")?;
    std::fs::write(out, io::write_design(&design)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} instances, {} nets, {} cascades, {} regions)",
        out,
        design.netlist.num_instances(),
        design.netlist.num_nets(),
        design.cascades.len(),
        design.regions.len()
    );
    Ok(())
}

fn cmd_place(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    let seed: u64 = get_num(flags, "seed", 1)?;
    let iterations: usize = get_num(flags, "iterations", 30)?;
    let mut cfg = match flags.get("flow").map(String::as_str) {
        None | Some("ours") => FlowConfig::model_driven(),
        Some("utda") => FlowConfig::utda_like(),
        Some("seu") => FlowConfig::seu_like(),
        Some("mpku") => FlowConfig::mpku_like(),
        Some(other) => return Err(format!("unknown flow {other:?}")),
    };
    cfg.gp_stage1.iterations = cfg.gp_stage1.iterations.min(iterations);
    cfg.gp_stage2.iterations = cfg.gp_stage2.iterations.min(iterations / 2 + 1);

    // With --model, the learned predictor from the checkpoint drives the
    // inflation rounds instead of RUDY; the congestion grid follows the
    // model's training grid.
    let model = match flags.get("model") {
        None => None,
        Some(path) => {
            let (spec, predictor) = load_predictor(path, load_options(flags)?)?;
            cfg.grid_w = spec.grid;
            cfg.grid_h = spec.grid;
            println!(
                "predicting with {} from {path} (grid {})",
                spec.arch.model_name(),
                spec.grid
            );
            Some(predictor)
        }
    };
    let flow = PlacementFlow::new(cfg);
    let result = match model {
        Some(mut predictor) => flow.run(&design, &mut predictor, seed),
        None => flow.run(&design, &mut RudyPredictor::default(), seed),
    };
    let out = get(flags, "out")?;
    std::fs::write(out, io::write_placement(&result.placement)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} (T_macro {:.2} min, HPWL {:.0})",
        out,
        result.t_macro_min,
        result.placement.hpwl(&design.netlist)
    );
    Ok(())
}

fn cmd_init_model(flags: &Flags) -> Result<(), String> {
    let arch: Arch = flags
        .get("arch")
        .map_or(Ok(Arch::Ours), |s| s.parse::<Arch>())?;
    let grid: usize = get_num(flags, "grid", 32)?;
    let seed: u64 = get_num(flags, "seed", 0)?;
    let mut spec = ArchSpec::new(arch, grid);
    if let Some(v) = flags.get("channels") {
        spec.base_channels = v
            .parse()
            .map_err(|_| format!("invalid value for --channels: {v:?}"))?;
    }
    let out = get(flags, "out")?;
    init_checkpoint(&spec, seed, out)?;
    println!(
        "wrote {out} ({} at grid {grid}, {} base channels, randomly initialized)",
        arch.model_name(),
        spec.base_channels
    );
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    use mfaplace_rt::rng::{SeedableRng, StdRng};

    let design = load_design(flags)?;
    let out = get(flags, "out")?;
    let resume = flags.contains_key("resume");
    let seed: u64 = get_num(flags, "seed", 0)?;

    // With --resume and an existing checkpoint, the architecture comes from
    // the file (it is self-describing); otherwise from the flags.
    let spec = if resume && std::path::Path::new(out).exists() {
        match peek_meta(out)? {
            Some(meta) => ArchSpec::from_meta(&meta).map_err(|e| format!("{out}: {e}"))?,
            None => {
                return Err(format!(
                    "{out}: cannot resume from a v1 checkpoint (no metadata)"
                ))
            }
        }
    } else {
        let arch: Arch = flags
            .get("arch")
            .map_or(Ok(Arch::Ours), |s| s.parse::<Arch>())?;
        let mut spec = ArchSpec::new(arch, get_num(flags, "grid", 32)?);
        if let Some(v) = flags.get("channels") {
            spec.base_channels = v
                .parse()
                .map_err(|_| format!("invalid value for --channels: {v:?}"))?;
        }
        spec
    };

    // Dataset from the design: legal placements scored by the global
    // router, at the model's grid.
    let mut ds_cfg = DatasetConfig {
        grid: spec.grid,
        placements_per_design: get_num(flags, "placements", 4)?,
        placer_iterations: get_num(flags, "iterations", 10)?,
        ..DatasetConfig::default()
    };
    ds_cfg.router.grid_w = spec.grid;
    ds_cfg.router.grid_h = spec.grid;
    let dataset = build_design_dataset(&design, &ds_cfg, seed.wrapping_add(1));
    println!(
        "dataset: {} samples at grid {} from {}",
        dataset.len(),
        spec.grid,
        design.name
    );

    let mut g = mfaplace::autograd::Graph::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = spec.build(&mut g, &mut rng)?;
    let config = TrainConfig {
        epochs: get_num(flags, "epochs", 4)?,
        batch_size: get_num(flags, "batch", 2)?,
        lr: get_num(flags, "lr", 1e-3)?,
        seed,
        workers: match flags.get("workers") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value for --workers: {v:?}"))?,
            ),
        },
        save_every: get_num(flags, "save-every", 0)?,
        checkpoint: Some(out.into()),
        resume,
        stop_after_steps: match flags.get("stop-after") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value for --stop-after: {v:?}"))?,
            ),
        },
        log_path: flags.get("log").map(Into::into),
        ..TrainConfig::default()
    };
    let workers = config.effective_workers();
    let mut trainer = Trainer::new(g, model, config);
    trainer.set_checkpoint_meta(spec.to_meta());
    let report = trainer.fit(&dataset);
    if let Some(at) = report.resumed_at_step {
        println!("resumed from {out} at step {at}");
    }
    println!(
        "trained {} ({} workers): {} steps, loss {:.4} -> {:.4}",
        spec.arch.model_name(),
        workers,
        report.steps,
        report.epoch_losses.first().copied().unwrap_or(0.0),
        report.epoch_losses.last().copied().unwrap_or(0.0),
    );
    let m = trainer.evaluate(&dataset);
    println!(
        "train-set metrics: ACC {:.3}, R2 {:.3}, NRMS {:.3}",
        m.acc, m.r2, m.nrms
    );
    println!("wrote {out}");
    Ok(())
}

/// `mfaplace compile`: the offline "compile for serving" step. Calibrates
/// activation ranges over placements of the `--calib` designs (generated
/// exactly like `train`'s dataset sweep) and writes a self-contained
/// quantized serving artifact next to nothing — the checkpoint bytes ride
/// inside it.
fn cmd_compile(flags: &Flags) -> Result<(), String> {
    let model_path = get(flags, "model")?;
    let out = get(flags, "out")?;
    let precision = match flags.get("precision") {
        None => Precision::Int8,
        Some(v) => Precision::parse(v)
            .ok_or_else(|| format!("invalid value for --precision: {v:?} (use int8 or f16)"))?,
    };
    let fold_bn = flags.contains_key("fold-bn");
    let calib_paths = flags.all("calib");
    if calib_paths.is_empty() {
        return Err("compile needs at least one --calib <file.nl> design".into());
    }
    let opts = load_options(flags)?;
    let seed: u64 = get_num(flags, "seed", 1)?;
    // The calibration sweep must run at the model's grid; load once just
    // to learn it (the compile step reloads from the file anyway).
    let (spec, _) = load_predictor(model_path, opts)?;

    let mut ds_cfg = DatasetConfig {
        grid: spec.grid,
        placements_per_design: get_num(flags, "placements", 4)?,
        placer_iterations: get_num(flags, "iterations", 10)?,
        ..DatasetConfig::default()
    };
    ds_cfg.router.grid_w = spec.grid;
    ds_cfg.router.grid_h = spec.grid;
    let mut inputs = Vec::new();
    for (i, path) in calib_paths.iter().enumerate() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let design = io::read_design(&text).map_err(|e| format!("{path}: {e}"))?;
        let ds = build_design_dataset(&design, &ds_cfg, seed.wrapping_add(i as u64));
        println!(
            "calibration: {} placements of {} at grid {}",
            ds.len(),
            design.name,
            spec.grid
        );
        inputs.extend(ds.samples.into_iter().map(|s| s.features));
    }

    let report = compile_for_serving(model_path, opts, &inputs, precision, fold_bn, out)?;
    let q = &report.qstats;
    println!(
        "compiled {} (grid {}) for {} serving{}: {} calibration inputs",
        report.spec.arch.model_name(),
        report.spec.grid,
        precision.name(),
        if fold_bn { ", bn folded" } else { "" },
        report.calib_inputs,
    );
    println!(
        "  quant plan (batch 1): {} ops, arena {} bytes ({:.2}x of f32 {} bytes)",
        report.stats.ops,
        q.arena_bytes,
        q.arena_bytes as f64 / q.f32_arena_bytes.max(1) as f64,
        q.f32_arena_bytes,
    );
    println!(
        "  quant storage: {} i8 / {} f16 / {} f32 values; {} int8-GEMM steps, {} generic; \
         {} quantized weight bytes",
        q.i8_values, q.f16_values, q.f32_values, q.i8_steps, q.generic_steps, q.qweight_bytes,
    );
    println!("wrote {out} ({} bytes)", report.artifact_bytes);
    Ok(())
}

fn cmd_model_info(flags: &Flags) -> Result<(), String> {
    let path = get(flags, "model")?;
    // The fleet's plan-cache key: slots serving byte-identical files share
    // one compiled plan set, and this is how to tell from the outside.
    let hash = content_hash(path)?;
    // Serving artifacts are not checkpoints — branch before peek_meta
    // chokes on the magic.
    if is_artifact(path) {
        let art = read_artifact(path)?;
        println!(
            "{path}: quantized serving artifact ({}, bn {})",
            art.precision.name(),
            if art.fold_bn { "folded" } else { "unfolded" },
        );
        println!(
            "  calibration: {} plan steps; embedded checkpoint {} bytes",
            art.calibration.steps(),
            art.checkpoint.len(),
        );
        println!("  content hash {hash:016x}");
        println!("  kernel backend: {}", simd::active().name());
        match load_predictor(path, load_options(flags)?) {
            Err(e) => println!("  quant plan: unavailable ({e})"),
            Ok((spec, mut predictor)) => {
                match predictor.compile_quant_plan(1, 6, spec.grid, spec.grid) {
                    Err(e) => println!("  quant plan: unavailable ({e})"),
                    Ok((s, q)) => {
                        println!(
                            "  quant plan (batch 1, grid {}): {} ops, arena {} bytes \
                             ({:.2}x of f32 {} bytes), {} levels",
                            spec.grid,
                            s.ops,
                            q.arena_bytes,
                            q.arena_bytes as f64 / q.f32_arena_bytes.max(1) as f64,
                            q.f32_arena_bytes,
                            s.levels,
                        );
                        println!(
                            "  quant storage: {} i8 / {} f16 / {} f32 values; \
                             {} int8-GEMM steps, {} generic",
                            q.i8_values, q.f16_values, q.f32_values, q.i8_steps, q.generic_steps,
                        );
                        println!(
                            "  quant weights: {} bytes quantized, scratch {} bytes",
                            q.qweight_bytes, q.scratch_bytes,
                        );
                    }
                }
            }
        }
        return Ok(());
    }
    match peek_meta(path)? {
        None => println!("{path}: v1 checkpoint (no metadata; load with --arch/--grid)"),
        Some(meta) => {
            let train = peek_train_state(path)?;
            let version = if train.is_some() { 3 } else { 2 };
            println!("{path}: v{version} checkpoint, model {}", meta.model);
            for (key, value) in meta.entries() {
                println!("  {key} = {value}");
            }
            if let Some((steps, epoch, losses)) = train {
                println!(
                    "  training state: step {steps}, epoch {epoch}, {} completed epoch(s){}",
                    losses.len(),
                    losses
                        .last()
                        .map(|l| format!(", last epoch loss {l:.4}"))
                        .unwrap_or_default()
                );
            }
        }
    }
    println!("  content hash {hash:016x}");
    println!("  kernel backend: {}", simd::active().name());
    // Compile the inference plan for a batch-1 forward and summarize it.
    match load_predictor(path, load_options(flags)?) {
        Err(e) => println!("  plan: unavailable ({e})"),
        Ok((spec, mut predictor)) => match predictor.compile_plan(1, 6, spec.grid, spec.grid) {
            Err(e) => println!("  plan: unavailable ({e})"),
            Ok(s) => {
                println!(
                    "  plan (batch 1, grid {}): {} ops, arena {:.2} MiB ({} bytes)",
                    spec.grid,
                    s.ops,
                    s.arena_bytes as f64 / (1024.0 * 1024.0),
                    s.arena_bytes
                );
                println!(
                    "  plan fusions: {} conv+bias, {} conv+affine, {} conv+relu, \
                         {} add+relu; {} weight tensors ({} bytes)",
                    s.fused_conv_bias,
                    s.fused_conv_affine,
                    s.fused_conv_relu,
                    s.fused_add_relu,
                    s.weights,
                    s.weight_bytes
                );
                println!(
                    "  plan scheduler: {} levels, critical-path depth {} ops, \
                         widest level {} ops, {} copies elided, {} workers",
                    s.levels,
                    s.levels,
                    s.max_level_width,
                    s.copies_elided,
                    predictor.plan_workers(),
                );
            }
        },
    }
    Ok(())
}

/// Splits the repeated `--model` values into `(slot, path)` pairs.
///
/// Each value is `name=path`; a bare `path` (no `=`) names the slot
/// "default" for single-model back-compat. The first entry becomes the
/// default routing target. Duplicate slot names are rejected here, at
/// parse time, before any checkpoint is read.
fn parse_model_specs(values: &[String]) -> Result<Vec<(String, String)>, String> {
    if values.is_empty() {
        return Err("missing required flag --model".into());
    }
    let mut specs: Vec<(String, String)> = Vec::with_capacity(values.len());
    for value in values {
        let (name, path) = match value.split_once('=') {
            Some((name, path)) => (name, path),
            None => (DEFAULT_SLOT, value.as_str()),
        };
        if name.is_empty() || path.is_empty() {
            return Err(format!(
                "invalid --model {value:?}: expected name=path or a bare path"
            ));
        }
        if specs.iter().any(|(n, _)| n == name) {
            return Err(format!("duplicate --model name {name:?}"));
        }
        specs.push((name.to_owned(), path.to_owned()));
    }
    Ok(specs)
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let specs = parse_model_specs(flags.all("model"))?;
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:8953".into());
    let opts = load_options(flags)?;
    let engine = parse_engine(flags)?;
    let metrics = Arc::new(Metrics::new());
    let cfg = ServeConfig {
        addr,
        ..ServeConfig::default()
    };
    let batch = cfg.batch;
    let fleet = Arc::new(ModelFleet::new(metrics.clone(), batch));
    let mut slot_lines = Vec::with_capacity(specs.len());
    for (name, path) in &specs {
        let fs = fleet.add_slot(name, path, opts, SlotLimits::default())?;
        if let Some(engine) = engine {
            fs.slot().set_engine(engine);
        }
        let spec = fs.slot().spec();
        slot_lines.push(format!(
            "  slot {name}: {} (grid {}, {} engine) from {path}",
            spec.arch.model_name(),
            spec.grid,
            fs.slot().engine().name()
        ));
    }
    // Placement jobs run through the same fleet, so their per-iteration
    // predictions coalesce with /predict traffic in the slot batchers.
    let jobs_cfg = JobsConfig::from_env();
    let engine = JobEngine::start(Arc::clone(&fleet), jobs_cfg.clone());
    engine.register_metrics(&metrics);
    let handle = serve_fleet_with(
        fleet,
        metrics,
        cfg,
        vec![Arc::new(JobsExtension::new(engine))],
    )
    .map_err(|e| format!("bind: {e}"))?;
    println!(
        "serving {} model slot(s) on http://{} (default slot {:?})",
        specs.len(),
        handle.addr(),
        specs[0].0
    );
    for line in slot_lines {
        println!("{line}");
    }
    println!(
        "batching: up to {} requests per {:?} window, queue bound {} per slot",
        batch.max_batch, batch.batch_window, batch.queue_bound
    );
    println!(
        "jobs: {} worker(s), queue bound {}, default deadline {:?}",
        jobs_cfg.workers, jobs_cfg.queue_bound, jobs_cfg.default_deadline
    );
    println!("endpoints: POST /predict, POST /predict/design, GET /metrics, GET /model,");
    println!("           GET /models, POST /models/<name>/predict[/design],");
    println!("           POST|GET /jobs, GET /jobs/<id>[/events], DELETE /jobs/<id>,");
    println!("           GET|POST /admin/slots, POST /admin/reload, POST /admin/shutdown");
    handle.wait();
    println!("server drained and stopped");
    Ok(())
}

fn cmd_predict(flags: &Flags) -> Result<(), String> {
    let addr = get(flags, "addr")?;
    let slot = flags.get("slot").map(String::as_str);
    if let Some(engine) = parse_engine(flags)? {
        let mut headers = Vec::new();
        if let Some(name) = slot {
            headers.push(("x-mfaplace-model", name));
        }
        let r = client::request(
            addr,
            "POST",
            "/admin/engine",
            &headers,
            engine.name().as_bytes(),
        )?;
        if r.status != 200 {
            return Err(format!("engine switch failed: {}", r.text().trim()));
        }
        match slot {
            Some(name) => println!("slot {name} engine set to {}", engine.name()),
            None => println!("server engine set to {}", engine.name()),
        }
    }
    let design_path = get(flags, "design")?;
    let placement_path = get(flags, "placement")?;
    let design_text = std::fs::read_to_string(design_path)
        .map_err(|e| format!("cannot read {design_path}: {e}"))?;
    let placement_text = std::fs::read_to_string(placement_path)
        .map_err(|e| format!("cannot read {placement_path}: {e}"))?;
    let levels = client::predict_design_slot(addr, slot, &design_text, &placement_text)?;
    let (h, w) = (levels.shape()[0], levels.shape()[1]);
    let data = levels.data();
    let max = data.iter().cloned().fold(0.0f32, f32::max);
    let mean = data.iter().sum::<f32>() / data.len() as f32;
    let hot = data.iter().filter(|&&v| v >= 4.0).count();
    println!("{h}x{w} congestion levels from {addr}");
    println!("  mean level {mean:.3}, max level {max:.3}, tiles >= level 4: {hot}");
    if let Some(out) = flags.get("out") {
        let map = GridMap::from_vec(w, h, data.to_vec());
        std::fs::write(out, render_heatmap(&map, 7.0).to_ppm()).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

/// Builds the `POST /jobs` body from the submit flags: an option header,
/// then the design shipped inline after the `---DESIGN---` marker.
fn job_submit_body(flags: &Flags) -> Result<String, String> {
    let design_path = get(flags, "design")?;
    let design_text = std::fs::read_to_string(design_path)
        .map_err(|e| format!("cannot read {design_path}: {e}"))?;
    let mut header = Vec::new();
    for key in ["flow", "seed", "slot", "predictor", "iterations", "grid"] {
        if let Some(value) = flags.get(key) {
            header.push(format!("{key}={value}"));
        }
    }
    if let Some(ms) = flags.get("deadline-ms") {
        header.push(format!("deadline_ms={ms}"));
    }
    Ok(format!("{}\n---DESIGN---\n{design_text}", header.join(" ")))
}

fn cmd_job_submit(flags: &Flags) -> Result<(), String> {
    let addr = get(flags, "addr")?;
    let body = job_submit_body(flags)?;
    let r = client::request(addr, "POST", "/jobs", &[], body.as_bytes())?;
    if r.status != 200 {
        return Err(format!("submit failed ({}): {}", r.status, r.text().trim()));
    }
    let text = r.text();
    print!("{text}");
    if flags.contains_key("watch") {
        let id = text
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("id "))
            .ok_or("submit response did not start with the job id")?
            .to_owned();
        return watch_job(addr, &id);
    }
    Ok(())
}

/// Follows a job's NDJSON event stream, printing each line as it arrives.
fn watch_job(addr: &str, id: &str) -> Result<(), String> {
    let path = format!("/jobs/{id}/events");
    let status = client::stream_lines(addr, "GET", &path, &[], b"", &mut |line| {
        if !line.is_empty() {
            println!("{line}");
        }
        true
    })?;
    if status != 200 {
        return Err(format!("watch failed ({status})"));
    }
    Ok(())
}

fn cmd_job_status(flags: &Flags) -> Result<(), String> {
    let addr = get(flags, "addr")?;
    let id = get(flags, "id")?;
    let r = client::request(addr, "GET", &format!("/jobs/{id}"), &[], b"")?;
    if r.status != 200 {
        return Err(format!("status failed ({}): {}", r.status, r.text().trim()));
    }
    print!("{}", r.text());
    Ok(())
}

fn cmd_job_watch(flags: &Flags) -> Result<(), String> {
    watch_job(get(flags, "addr")?, get(flags, "id")?)
}

fn cmd_job_cancel(flags: &Flags) -> Result<(), String> {
    let addr = get(flags, "addr")?;
    let id = get(flags, "id")?;
    let r = client::request(addr, "DELETE", &format!("/jobs/{id}"), &[], b"")?;
    if r.status != 200 {
        return Err(format!("cancel failed ({}): {}", r.status, r.text().trim()));
    }
    print!("{}", r.text());
    Ok(())
}

fn cmd_job_list(flags: &Flags) -> Result<(), String> {
    let addr = get(flags, "addr")?;
    let r = client::request(addr, "GET", "/jobs", &[], b"")?;
    if r.status != 200 {
        return Err(format!("list failed ({}): {}", r.status, r.text().trim()));
    }
    let text = r.text();
    if text.is_empty() {
        println!("no jobs");
    } else {
        print!("{text}");
    }
    Ok(())
}

fn cmd_route(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    let placement = load_placement(flags)?;
    let grid: usize = get_num(flags, "grid", 48)?;
    let router_cfg = calibrated_router_for(&design, grid, 0.7, 99);
    let outcome = GlobalRouter::new(router_cfg.clone()).route(&design, &placement);
    let analysis = CongestionAnalysis::from_usage(&outcome.usage, &router_cfg);
    let s_dr = detailed_route_iterations(&analysis, &outcome);
    let score = RoutabilityScore::new(ScoreInputs {
        l_short: analysis.short_levels(),
        l_global: analysis.global_levels(),
        s_dr,
        t_macro_min: 0.0,
        t_pr_hours: simulated_pnr_hours(&outcome, s_dr, &router_cfg),
    });
    println!("wirelength      {:.0}", outcome.total_wirelength);
    println!("overflow        {:.0}", outcome.total_overflow);
    println!("short levels    {:?}", analysis.short_levels());
    println!("global levels   {:?}", analysis.global_levels());
    println!("S_IR            {:.0}", score.s_ir());
    println!("S_DR            {:.0}", score.s_dr());
    println!("S_R             {:.0}", score.s_r());
    println!("T_P&R           {:.2} h", score.inputs().t_pr_hours);
    println!("S_score         {:.2}", score.s_score());
    Ok(())
}

fn cmd_features(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    let placement = load_placement(flags)?;
    let grid: usize = get_num(flags, "grid", 48)?;
    let prefix = get(flags, "out")?;
    let f = FeatureStack::extract(&design, &placement, grid, grid);
    for (name, map) in [
        ("macro", &f.macro_map),
        ("hnet", &f.hnet),
        ("vnet", &f.vnet),
        ("rudy", &f.rudy),
        ("pin_rudy", &f.pin_rudy),
        ("cell_density", &f.cell_density),
    ] {
        let path = format!("{prefix}_{name}.ppm");
        std::fs::write(&path, render_heatmap(map, 1.0).to_ppm()).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_render(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    let placement = load_placement(flags)?;
    let out = get(flags, "out")?;
    let img = render_placement(&design, &placement, 6);
    std::fs::write(out, img.to_ppm()).map_err(|e| e.to_string())?;
    println!("wrote {out} ({}x{})", img.width(), img.height());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_keep_every_occurrence_and_get_returns_the_last() {
        let flags = parse_flags(&argv(&[
            "--model", "a=x.mfaw", "--grid", "16", "--model", "b=y.mfaw", "--grid", "32",
        ]))
        .unwrap();
        assert_eq!(flags.get("grid").unwrap(), "32");
        assert_eq!(flags.all("model"), ["a=x.mfaw", "b=y.mfaw"]);
        assert!(flags.all("missing").is_empty());
        assert!(!flags.contains_key("resume"));
    }

    #[test]
    fn model_specs_split_names_and_default_bare_paths() {
        let specs = parse_model_specs(&argv(&["a=x.mfaw", "b=y.mfaw"])).unwrap();
        assert_eq!(specs[0], ("a".into(), "x.mfaw".into()));
        assert_eq!(specs[1], ("b".into(), "y.mfaw".into()));

        let specs = parse_model_specs(&argv(&["x.mfaw"])).unwrap();
        assert_eq!(specs, [("default".into(), "x.mfaw".into())]);
    }

    #[test]
    fn model_specs_reject_duplicates_at_parse_time() {
        let err = parse_model_specs(&argv(&["a=x.mfaw", "a=y.mfaw"])).unwrap_err();
        assert!(err.contains("duplicate --model name \"a\""), "{err}");
        // Two bare paths collide on the implicit "default" name.
        let err = parse_model_specs(&argv(&["x.mfaw", "y.mfaw"])).unwrap_err();
        assert!(err.contains("duplicate --model name \"default\""), "{err}");
        let err = parse_model_specs(&argv(&["=x.mfaw"])).unwrap_err();
        assert!(err.contains("expected name=path"), "{err}");
        let err = parse_model_specs(&[]).unwrap_err();
        assert!(err.contains("--model"), "{err}");
    }
}
