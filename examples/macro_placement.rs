//! The full Fig. 6 flow with stage-by-stage logging: cascade merging,
//! region-aware global placement, congestion prediction + instance
//! inflation, refinement and macro legalization — then verification that
//! every contest constraint holds.
//!
//! ```sh
//! cargo run --release --example macro_placement
//! ```

use mfaplace::fpga::design::DesignPreset;
use mfaplace::placer::flows::RudyPredictor;
use mfaplace::placer::gp::{GlobalPlacer, GpConfig};
use mfaplace::placer::inflate::{inflate_areas, InflationConfig};
use mfaplace::placer::legal::{legalize_cells, legalize_macros};
use mfaplace::placer::CongestionPredictor;

fn main() {
    let design = DesignPreset::design_190()
        .with_scale(256, 32, 16)
        .generate(11);
    println!(
        "flow for {}: {} movables ({} macros, {} cascades, {} regions)",
        design.name,
        design.movable_count(),
        design.netlist.macros().len(),
        design.cascades.len(),
        design.regions.len()
    );

    // Stage 0: cascade merging happens inside the placer constructor.
    let mut gp = GlobalPlacer::new(&design, 11);
    println!(
        "stage 0: cascade merging -> {} movable objects",
        gp.num_movables()
    );

    // Stage 1: region-aware global placement until the overflow targets
    // (Overflow_macro < 0.25, Overflow_cell < 0.15) are met.
    let cfg = GpConfig {
        iterations: 30,
        ..GpConfig::default()
    };
    let (iters, overflow) = gp.run_stage(&cfg);
    println!("stage 1: {iters} GP iterations, overflow {overflow:?}");

    // Stage 2: congestion prediction + instance inflation (Eqs. 11-13).
    let snapshot = gp.placement();
    let mut predictor = RudyPredictor::default();
    let congestion = predictor.predict(&design, &snapshot, 32, 32);
    println!(
        "stage 2: predicted congestion peak level {:.2}",
        congestion.max()
    );
    let mut areas = gp.areas().to_vec();
    let stats = inflate_areas(
        &design,
        &snapshot,
        &congestion,
        &mut areas,
        &InflationConfig::default(),
    );
    gp.areas_mut().copy_from_slice(&areas);
    println!(
        "         inflated {} instances by {:.1} site units (tau_cell {:.2})",
        stats.inflated_instances, stats.added_area, stats.tau_cell
    );
    let (_, overflow) = gp.run_stage(&GpConfig {
        iterations: 15,
        ..GpConfig::default()
    });
    println!("         refinement overflow {overflow:?}");

    // Stage 3: legalization.
    let mut placement = gp.placement();
    legalize_macros(&design, &mut placement).expect("macro legalization");
    legalize_cells(&design, &mut placement);

    // Verify every contest constraint.
    let mut cascade_ok = 0;
    for c in &design.cascades {
        let (x0, y0) = placement.pos(c.members[0].0 as usize);
        let ok = c.members.iter().enumerate().all(|(k, &m)| {
            let (x, y) = placement.pos(m.0 as usize);
            x == x0 && (y - (y0 + k as f32)).abs() < 1e-6
        });
        cascade_ok += usize::from(ok);
    }
    println!(
        "stage 3: legalized; {}/{} cascades on consecutive ordered sites",
        cascade_ok,
        design.cascades.len()
    );
    let mut region_ok = 0usize;
    let mut region_total = 0usize;
    for (ri, r) in design.regions.iter().enumerate() {
        for &m in &r.members {
            if design.region_of(m) != Some(ri) {
                continue;
            }
            region_total += 1;
            let (x, y) = placement.pos(m.0 as usize);
            region_ok += usize::from(r.rect.contains(x, y));
        }
    }
    println!("         {region_ok}/{region_total} region-bound instances inside their regions");
    println!("final HPWL = {:.0}", placement.hpwl(&design.netlist));
}
