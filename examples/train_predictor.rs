//! Trains the paper's MFA+transformer congestion predictor on one design's
//! placement sweep, evaluates it against the RUDY baseline, and uses it to
//! drive the model-driven placement flow (the paper's headline use case).
//!
//! ```sh
//! cargo run --release --example train_predictor
//! ```

use mfaplace::autograd::Graph;
use mfaplace::core::dataset::{build_design_dataset, DatasetConfig};
use mfaplace::core::flow::{FlowConfig, MacroPlacementFlow};
use mfaplace::core::predictor::ModelPredictor;
use mfaplace::core::train::{TrainConfig, Trainer};
use mfaplace::fpga::design::DesignPreset;
use mfaplace::models::{ArchSpec, OursConfig, OursModel};
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::StdRng;

fn main() {
    let design = DesignPreset::design_176()
        .with_scale(256, 32, 16)
        .generate(5);
    let grid = 32;

    // 1. Dataset: placement sweep + rotation augmentation (Sec. V-A).
    let ds_cfg = DatasetConfig {
        grid,
        placements_per_design: 4,
        augment: true,
        placer_iterations: 8,
        ..DatasetConfig::default()
    };
    println!("building dataset for {}...", design.name);
    let dataset = build_design_dataset(&design, &ds_cfg, 17);
    let (train, test) = dataset.split(0.25, 3);
    println!("{} train / {} test samples", train.len(), test.len());

    // 2. Train the model (Adam, lr 1e-3, weighted pixel cross entropy).
    let ours_cfg = OursConfig {
        grid,
        base_channels: 8,
        vit_layers: 2,
        vit_heads: 4,
        use_mfa: true,
        mfa_reduction: 4,
    };
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = OursModel::new(&mut g, ours_cfg, &mut rng);
    let spec = ArchSpec::from_ours(ours_cfg);
    let ckpt = "trained_ours.mfaw";
    // Data-parallel + resumable: shards each minibatch across workers
    // (bitwise identical for any count), checkpoints every 4 steps, and
    // picks up exactly where it left off if re-run with `resume`.
    let mut trainer = Trainer::new(
        g,
        model,
        TrainConfig {
            epochs: 4,
            batch_size: 2,
            workers: None, // MFAPLACE_TRAIN_WORKERS or the rt pool size
            save_every: 4,
            checkpoint: Some(ckpt.into()),
            resume: true,
            log_path: Some("trained_ours.log.jsonl".into()),
            ..TrainConfig::default()
        },
    );
    trainer.set_checkpoint_meta(spec.to_meta());
    let report = trainer.fit(&train);
    if let Some(at) = report.resumed_at_step {
        println!("resumed from {ckpt} at step {at}");
    }
    let trained_ms: f64 = report.steps_log.iter().map(|s| s.millis).sum();
    println!(
        "trained {} steps on {} workers ({:.1} ms/step); epoch losses: {:?}",
        report.steps,
        report.workers,
        trained_ms / report.steps_log.len().max(1) as f64,
        report
            .epoch_losses
            .iter()
            .map(|l| (l * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // 3. Evaluate (Sec. V-B metrics).
    let metrics = trainer.evaluate(&test);
    println!(
        "test metrics: ACC {:.3}, R2 {:.3}, NRMS {:.3}",
        metrics.acc, metrics.r2, metrics.nrms
    );

    // 4. The trainer already saved a self-describing v3 checkpoint (weights
    // + optimizer state): `mfaplace serve --model ...` and `mfaplace place
    // --model ...` rebuild the architecture from it, and `mfaplace train
    // --resume` continues it. `save_predictor` still writes a weights-only
    // v2 file when the training state is not wanted.
    let (graph, model) = trainer.into_parts();
    println!("saved checkpoint {ckpt} (serve it: mfaplace serve --model {ckpt})");

    // 5. Plug the trained model into the placement flow (Sec. IV).
    let mut predictor = ModelPredictor::new(graph, model);
    let mut flow_cfg = FlowConfig::default();
    flow_cfg.placer.grid_w = grid;
    flow_cfg.placer.grid_h = grid;
    flow_cfg.placer.gp_stage1.iterations = 20;
    flow_cfg.placer.gp_stage2.iterations = 10;
    flow_cfg.router.grid_w = grid;
    flow_cfg.router.grid_h = grid;
    let flow = MacroPlacementFlow::new(flow_cfg.clone());
    let model_outcome = flow.run_with(&design, &mut predictor, 9);
    let rudy_outcome = flow.run(&design, 9);
    println!(
        "model-driven flow: S_R {:.0} (S_IR {:.0} x S_DR {:.0})",
        model_outcome.score.s_r(),
        model_outcome.score.s_ir(),
        model_outcome.score.s_dr()
    );
    println!(
        "RUDY-driven flow:  S_R {:.0} (S_IR {:.0} x S_DR {:.0})",
        rudy_outcome.score.s_r(),
        rudy_outcome.score.s_ir(),
        rudy_outcome.score.s_dr()
    );
}
