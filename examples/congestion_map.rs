//! Congestion-map exploration: extract the six grid features of Sec. III-B
//! for one placement, route it, and compare the RUDY estimate against the
//! router's ground-truth congestion levels tile by tile (the motivating
//! gap the paper's learned model closes).
//!
//! ```sh
//! cargo run --release --example congestion_map
//! ```

use mfaplace::fpga::design::DesignPreset;
use mfaplace::fpga::features::FeatureStack;
use mfaplace::router::labels::congestion_labels;
use mfaplace::router::RouterConfig;

const GLYPHS: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];

fn render(title: &str, values: &[f32], w: usize, h: usize, max: f32) {
    println!("\n{title}:");
    for y in (0..h).rev() {
        let mut line = String::with_capacity(w);
        for x in 0..w {
            let v = values[y * w + x] / max.max(1e-6);
            let idx = ((v * 7.0) as usize).min(7);
            line.push(GLYPHS[idx]);
        }
        println!("{line}");
    }
}

fn main() {
    let design = DesignPreset::design_180()
        .with_scale(256, 32, 16)
        .generate(7);
    let placement = design.random_placement(3);
    let grid = 32;

    // The six features of Sec. III-B.
    let features = FeatureStack::extract(&design, &placement, grid, grid);
    println!("feature tensor shape: {:?}", features.to_tensor().shape());
    for (name, map) in [
        ("macro map", &features.macro_map),
        ("RUDY map", &features.rudy),
        ("pin RUDY map", &features.pin_rudy),
        ("cell density map", &features.cell_density),
    ] {
        println!(
            "{name:>16}: max {:.3}, nonzero {}",
            map.max(),
            map.data().iter().filter(|&&v| v > 0.0).count()
        );
    }

    // Ground truth from the router, with capacities calibrated to the
    // design so the level map shows structure rather than saturation.
    let cfg = RouterConfig {
        grid_w: grid,
        grid_h: grid,
        ..mfaplace::core::flow::calibrated_router_for(&design, grid, 0.95, 42)
    };
    let labels = congestion_labels(&design, &placement, &cfg);

    render(
        "RUDY estimate (normalized)",
        features.rudy.data(),
        grid,
        grid,
        1.0,
    );
    render(
        "router congestion levels (ground truth)",
        labels.map.data(),
        grid,
        grid,
        7.0,
    );

    // Where do they disagree? RUDY is demand, levels are realized windows.
    let mut overestimates = 0usize;
    let mut underestimates = 0usize;
    for i in 0..grid * grid {
        let rudy_level = features.rudy.data()[i] * 7.0;
        let true_level = labels.map.data()[i];
        if rudy_level > true_level + 1.5 {
            overestimates += 1;
        }
        if rudy_level + 1.5 < true_level {
            underestimates += 1;
        }
    }
    println!(
        "\nRUDY vs truth: {overestimates} tiles overestimated, {underestimates} underestimated \
         (of {})",
        grid * grid
    );
    println!(
        "directional levels short {:?} / global {:?}",
        labels.analysis.short_levels(),
        labels.analysis.global_levels()
    );
}
