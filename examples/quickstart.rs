//! Quickstart: generate a contest-like benchmark, place it with the
//! routability-driven flow, route it and print the MLCAD 2023 scores.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mfaplace::core::flow::{FlowConfig, MacroPlacementFlow};
use mfaplace::fpga::design::DesignPreset;

fn main() {
    // A scaled-down Design_116 (370K LUTs / 2052 DSPs at full scale).
    let design = DesignPreset::design_116()
        .with_scale(256, 32, 16)
        .generate(42);
    println!(
        "design {}: {} instances, {} nets, {} cascades, {} regions",
        design.name,
        design.netlist.num_instances(),
        design.netlist.num_nets(),
        design.cascades.len(),
        design.regions.len()
    );

    // Run the full flow with the default (RUDY) congestion predictor; see
    // `train_predictor.rs` for plugging in the learned model. The scoring
    // router's wire capacities are calibrated to the design, as in the
    // Table II harness.
    let mut config = FlowConfig::default();
    config.placer.gp_stage1.iterations = 25;
    config.placer.gp_stage2.iterations = 12;
    config.placer.grid_w = 48;
    config.placer.grid_h = 48;
    config.router = mfaplace::core::flow::calibrated_router_for(&design, 48, 0.95, 42);
    let flow = MacroPlacementFlow::new(config);
    let outcome = flow.run(&design, 42);

    println!(
        "placed in {:.2} min, HPWL = {:.0}",
        outcome.placement.t_macro_min,
        outcome.placement.placement.hpwl(&design.netlist)
    );
    println!(
        "routing: wirelength {:.0}, overflow {:.0}",
        outcome.wirelength, outcome.overflow
    );
    println!(
        "scores: S_IR = {:.0}, S_DR = {:.0}, S_R = {:.0}, S_score = {:.2}",
        outcome.score.s_ir(),
        outcome.score.s_dr(),
        outcome.score.s_r(),
        outcome.score.s_score()
    );
}
