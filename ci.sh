#!/usr/bin/env sh
# Local CI gate. Everything runs offline — the workspace has no external
# dependencies (see DESIGN.md, "zero-external-dependency policy").
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --offline"
cargo test -q --workspace --offline

echo "==> serve smoke test"
cargo run -q --release --offline -p mfaplace-serve --example smoke

echo "CI OK"
