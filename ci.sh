#!/usr/bin/env sh
# Local CI gate. Everything runs offline — the workspace has no external
# dependencies (see DESIGN.md, "zero-external-dependency policy").
#
#   ./ci.sh          full gate: lints, build, tests, training/determinism
#                    suites, smoke runs, benches
#   ./ci.sh --quick  same minus the benches and smoke runs (fast tier)
set -eu

cd "$(dirname "$0")"

QUICK=0
if [ "${1:-}" = "--quick" ]; then
    QUICK=1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --offline (auto-detected kernel backend)"
cargo test -q --workspace --offline

# Second pass with the vector kernels disabled: the scalar reference path
# must stay green on its own, not just as the fallback arm of dispatch.
echo "==> cargo test --offline (forced scalar kernels)"
MFAPLACE_KERNELS=scalar cargo test -q --workspace --offline

echo "==> gradient checks (primitives + MFA/transformer modules)"
cargo test -q -p mfaplace-autograd --offline --test gradcheck_ops

echo "==> fused-attention equivalence + buffer-pool suite"
cargo test -q -p mfaplace-autograd --offline --test attention_equivalence
cargo test -q -p mfaplace-nn --offline --test fused_attention
cargo test -q -p mfaplace-models --offline --test fused_mfa

echo "==> training determinism + checkpoint/resume suite"
cargo test -q -p mfaplace-core --offline --test train_determinism

echo "==> golden regression suite"
cargo test -q -p mfaplace-core --offline --test golden_regression

echo "==> SIMD differential suite (vector kernels vs scalar reference)"
cargo test -q -p mfaplace-tensor --offline --test simd_equivalence
cargo test -q -p mfaplace-core --offline --test kernel_tolerance

# The parallel level scheduler must be bitwise identical to serial replay
# at every worker count; run the infer suites under both a forced-serial
# and a forced-parallel executor so the env plumbing itself is exercised.
echo "==> plan scheduler suite (MFAPLACE_PLAN_WORKERS=1 and =4)"
MFAPLACE_PLAN_WORKERS=1 cargo test -q -p mfaplace-infer --offline
MFAPLACE_PLAN_WORKERS=4 cargo test -q -p mfaplace-infer --offline

# Quantized serving round trip: offline compile writes an artifact that
# model-info recognizes and a server loads without re-calibrating; a
# predict through the quant engine must answer.
echo "==> quantized compile + quant-serving smoke"
TMPQ=$(mktemp -d)
./target/release/mfaplace generate --design 116 --seed 1 \
    --scale 512,64,32 --out "$TMPQ/d.nl" >/dev/null
./target/release/mfaplace init-model --arch ours --grid 16 --seed 3 \
    --out "$TMPQ/m.mfaw" >/dev/null
./target/release/mfaplace compile --model "$TMPQ/m.mfaw" --calib "$TMPQ/d.nl" \
    --placements 1 --iterations 2 --precision int8 --out "$TMPQ/m.mfaq"
# Capture to a file rather than `| grep -q`: grep exiting at first match
# would close the pipe while model-info is still printing (SIGPIPE panic).
./target/release/mfaplace model-info --model "$TMPQ/m.mfaq" >"$TMPQ/info.txt"
grep -q "quantized serving artifact" "$TMPQ/info.txt" || {
    echo "model-info does not recognize the compiled artifact" >&2
    rm -rf "$TMPQ"
    exit 1
}
./target/release/mfaplace place --design "$TMPQ/d.nl" --flow seu --seed 1 \
    --iterations 2 --out "$TMPQ/p.pl" >/dev/null
./target/release/mfaplace serve --model "$TMPQ/m.mfaq" \
    --addr 127.0.0.1:8958 >"$TMPQ/serve.log" 2>&1 &
QUANT_SERVE_PID=$!
sleep 1
if ! ./target/release/mfaplace predict --addr 127.0.0.1:8958 --engine quant \
    --design "$TMPQ/d.nl" --placement "$TMPQ/p.pl"; then
    echo "quant predict failed; serve log:" >&2
    cat "$TMPQ/serve.log" >&2
    kill "$QUANT_SERVE_PID" 2>/dev/null || true
    rm -rf "$TMPQ"
    exit 1
fi
kill "$QUANT_SERVE_PID" 2>/dev/null || true
wait "$QUANT_SERVE_PID" 2>/dev/null || true
rm -rf "$TMPQ"

if [ "$QUICK" = "1" ]; then
    echo "CI OK (quick tier: benches and smoke runs skipped)"
    exit 0
fi

# The quant engine must be safe to force globally: anywhere a predictor
# has no calibration it falls back to the f32 plan bitwise, so the whole
# workspace stays green under MFAPLACE_ENGINE=quant.
echo "==> workspace once under the quant engine"
MFAPLACE_ENGINE=quant cargo test -q --workspace --offline

echo "==> quantized-plan tolerance suite (level-map contract)"
cargo test -q -p mfaplace-infer --offline --test quant_tolerance

# The workspace test pass above already ran this; the explicit invocation
# keeps the equivalence contract visible in the full gate's log.
echo "==> compiled-plan equivalence suite (plan vs tape, bitwise)"
cargo test -q -p mfaplace-infer --offline --test plan_equivalence

echo "==> 2-worker training smoke (CLI train path)"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
./target/release/mfaplace generate --design 180 --seed 1 \
    --scale 512,64,32 --out "$TMP/d.nl" >/dev/null
MFAPLACE_TRAIN_WORKERS=2 ./target/release/mfaplace train \
    --design "$TMP/d.nl" --out "$TMP/m.mfaw" \
    --grid 32 --channels 4 --epochs 1 --placements 2 --iterations 4
./target/release/mfaplace model-info --model "$TMP/m.mfaw"

# The kernel backend must be reported identically everywhere it surfaces:
# the `kernels` subcommand, `model-info`, and (asserted by the serve unit
# tests above) the `mfaplace_kernel_backend` metrics gauge.
echo "==> kernel-backend report consistency (kernels vs model-info)"
ACTIVE=$(./target/release/mfaplace kernels | sed -n 's/^active backend: //p')
REPORTED=$(./target/release/mfaplace model-info --model "$TMP/m.mfaw" \
    | sed -n 's/^  kernel backend: //p')
if [ -z "$ACTIVE" ] || [ "$ACTIVE" != "$REPORTED" ]; then
    echo "kernel backend mismatch: kernels='$ACTIVE' model-info='$REPORTED'" >&2
    exit 1
fi
echo "    active backend: $ACTIVE (consistent)"

echo "==> serve smoke test"
cargo run -q --release --offline -p mfaplace-serve --example smoke

echo "==> two-slot fleet smoke test"
cargo run -q --release --offline -p mfaplace-serve --example fleet_smoke

echo "==> placement-jobs smoke test (two concurrent jobs, one slot)"
cargo run -q --release --offline -p mfaplace-jobs --example jobs_smoke

echo "==> train-throughput bench (results/train_parallel.json)"
MFA_SCALE=quick cargo run -q --release --offline -p mfaplace-bench \
    --bin train_parallel >/dev/null

echo "==> SIMD kernel bench, one child per backend (results/simd_kernels.json)"
cargo bench -q --offline -p mfaplace-bench --bench simd_kernels

echo "==> fused-attention bench (results/attention_fused.json)"
cargo bench -q --offline -p mfaplace-bench --bench attention_fused

echo "==> compiled-plan bench (results/infer_plan.json)"
cargo bench -q --offline -p mfaplace-bench --bench infer_plan

echo "==> fleet scaling bench (results/serve_fleet.json)"
cargo bench -q --offline -p mfaplace-bench --bench serve_fleet

echo "==> placement-jobs bench (results/serve_jobs.json)"
cargo bench -q --offline -p mfaplace-bench --bench serve_jobs

echo "CI OK"
